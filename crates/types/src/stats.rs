//! Lightweight statistics helpers used by the simulator and the bench
//! harness: counters, running means, and fixed-bucket histograms.

/// Running mean/min/max over a stream of `f64` samples.
///
/// # Examples
///
/// ```
/// use mopac_types::stats::RunningStats;
///
/// let mut s = RunningStats::new();
/// for v in [1.0, 2.0, 3.0] {
///     s.push(v);
/// }
/// assert_eq!(s.count(), 3);
/// assert!((s.mean() - 2.0).abs() < 1e-12);
/// assert_eq!(s.min(), Some(1.0));
/// assert_eq!(s.max(), Some(3.0));
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunningStats {
    count: u64,
    sum: f64,
    sum_sq: f64,
    min: Option<f64>,
    max: Option<f64>,
}

impl RunningStats {
    /// Creates an empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a sample.
    pub fn push(&mut self, v: f64) {
        self.count += 1;
        self.sum += v;
        self.sum_sq += v * v;
        self.min = Some(self.min.map_or(v, |m| m.min(v)));
        self.max = Some(self.max.map_or(v, |m| m.max(v)));
    }

    /// Number of samples seen.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    #[must_use]
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean of the samples (0 if empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Population standard deviation (0 if fewer than two samples).
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        if self.count < 2 {
            return 0.0;
        }
        let n = self.count as f64;
        let var = (self.sum_sq / n - (self.sum / n).powi(2)).max(0.0);
        var.sqrt()
    }

    /// Smallest sample, if any.
    #[must_use]
    pub fn min(&self) -> Option<f64> {
        self.min
    }

    /// Largest sample, if any.
    #[must_use]
    pub fn max(&self) -> Option<f64> {
        self.max
    }
}

impl Extend<f64> for RunningStats {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for v in iter {
            self.push(v);
        }
    }
}

impl FromIterator<f64> for RunningStats {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut s = Self::new();
        s.extend(iter);
        s
    }
}

/// A histogram with fixed-width buckets plus an overflow bucket.
///
/// # Examples
///
/// ```
/// use mopac_types::stats::Histogram;
///
/// let mut h = Histogram::new(10, 5); // 5 buckets of width 10: [0,10), [10,20)...
/// h.record(3);
/// h.record(12);
/// h.record(999); // overflow
/// assert_eq!(h.bucket_count(0), 1);
/// assert_eq!(h.bucket_count(1), 1);
/// assert_eq!(h.overflow(), 1);
/// assert_eq!(h.total(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    bucket_width: u64,
    buckets: Vec<u64>,
    overflow: u64,
    total: u64,
}

impl Histogram {
    /// Creates a histogram with `num_buckets` buckets of `bucket_width`.
    ///
    /// # Panics
    ///
    /// Panics if `bucket_width` is zero or `num_buckets` is zero.
    #[must_use]
    pub fn new(bucket_width: u64, num_buckets: usize) -> Self {
        assert!(bucket_width > 0, "bucket width must be positive");
        assert!(num_buckets > 0, "need at least one bucket");
        Self {
            bucket_width,
            buckets: vec![0; num_buckets],
            overflow: 0,
            total: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.total += 1;
        let idx = (value / self.bucket_width) as usize;
        if idx < self.buckets.len() {
            self.buckets[idx] += 1;
        } else {
            self.overflow += 1;
        }
    }

    /// Count in bucket `idx` (`[idx*width, (idx+1)*width)`).
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    #[must_use]
    pub fn bucket_count(&self, idx: usize) -> u64 {
        self.buckets[idx]
    }

    /// Number of buckets (excluding overflow).
    #[must_use]
    pub fn num_buckets(&self) -> usize {
        self.buckets.len()
    }

    /// Count of samples beyond the last bucket.
    #[must_use]
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total samples recorded.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Count of samples at or above `value` (rounded down to a bucket
    /// boundary).
    #[must_use]
    pub fn count_at_or_above(&self, value: u64) -> u64 {
        let start = (value / self.bucket_width) as usize;
        self.buckets.iter().skip(start).sum::<u64>() + self.overflow
    }
}

/// Formats a ratio as a signed percentage string, e.g. `+1.8%`.
#[must_use]
pub fn format_pct(frac: f64) -> String {
    format!("{:+.1}%", frac * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn running_stats_std_dev() {
        let s: RunningStats = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0].into_iter().collect();
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = RunningStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.std_dev(), 0.0);
        assert_eq!(s.min(), None);
    }

    #[test]
    fn histogram_cumulative() {
        let mut h = Histogram::new(64, 8);
        for v in [0, 63, 64, 200, 10_000] {
            h.record(v);
        }
        assert_eq!(h.count_at_or_above(64), 3);
        assert_eq!(h.count_at_or_above(0), 5);
        assert_eq!(h.overflow(), 1);
    }

    #[test]
    fn format_pct_signs() {
        assert_eq!(format_pct(0.018), "+1.8%");
        assert_eq!(format_pct(-0.004), "-0.4%");
    }
}
