//! Property tests for the foundation types.

use mopac_types::addr::PhysAddr;
use mopac_types::rng::DetRng;
use mopac_types::stats::Histogram;
use mopac_types::time::MemClock;
use proptest::prelude::*;

proptest! {
    #[test]
    fn line_index_round_trips(addr in 0u64..(1 << 40)) {
        let a = PhysAddr::new(addr);
        let line = a.line_index(64);
        prop_assert_eq!(PhysAddr::from_line_index(line, 64), a.align_down(64));
    }

    #[test]
    fn align_down_is_idempotent(addr in any::<u64>(), shift in 0u32..12) {
        let align = 1u32 << shift;
        let once = PhysAddr::new(addr).align_down(align);
        prop_assert_eq!(once.align_down(align), once);
        prop_assert!(once.get() <= addr);
    }

    #[test]
    fn ns_to_cycles_monotone(a in 0.0f64..1e6, b in 0.0f64..1e6) {
        let clk = MemClock::ddr5_6000();
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(clk.ns_to_cycles(lo) <= clk.ns_to_cycles(hi));
    }

    #[test]
    fn cycles_cover_duration(ns in 0.0f64..1e6) {
        // The ceiling conversion must never under-provision time.
        let clk = MemClock::ddr5_6000();
        let cycles = clk.ns_to_cycles(ns);
        prop_assert!(clk.cycles_to_ns(cycles) + 1e-6 >= ns);
    }

    #[test]
    fn histogram_totals_conserved(values in prop::collection::vec(0u64..10_000, 1..200)) {
        let mut h = Histogram::new(64, 16);
        for &v in &values {
            h.record(v);
        }
        let bucket_sum: u64 = (0..h.num_buckets()).map(|i| h.bucket_count(i)).sum();
        prop_assert_eq!(bucket_sum + h.overflow(), values.len() as u64);
        prop_assert_eq!(h.count_at_or_above(0), values.len() as u64);
    }

    #[test]
    fn rng_forks_are_reproducible(seed in any::<u64>(), stream in any::<u64>()) {
        let mut a = DetRng::from_seed(seed).fork(stream);
        let mut b = DetRng::from_seed(seed).fork(stream);
        for _ in 0..16 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn bernoulli_extremes(seed in any::<u64>()) {
        let mut rng = DetRng::from_seed(seed);
        prop_assert!(!rng.bernoulli(0.0));
        prop_assert!(rng.bernoulli(1.0));
    }
}
