//! Property tests for the foundation types.

use mopac_types::addr::PhysAddr;
use mopac_types::check::prop_check;
use mopac_types::prop_ensure;
use mopac_types::rng::DetRng;
use mopac_types::stats::Histogram;
use mopac_types::time::MemClock;

#[test]
fn line_index_round_trips() {
    prop_check("line_index_round_trips", 256, |rng| {
        let addr = rng.below(1 << 40);
        let a = PhysAddr::new(addr);
        let line = a.line_index(64);
        prop_ensure!(
            PhysAddr::from_line_index(line, 64) == a.align_down(64),
            "addr {addr:#x}"
        );
        Ok(())
    });
}

#[test]
fn align_down_is_idempotent() {
    prop_check("align_down_is_idempotent", 256, |rng| {
        let addr = rng.next_u64();
        let align = 1u32 << rng.below(12);
        let once = PhysAddr::new(addr).align_down(align);
        prop_ensure!(once.align_down(align) == once, "addr {addr:#x} align {align}");
        prop_ensure!(once.get() <= addr, "align_down grew {addr:#x}");
        Ok(())
    });
}

#[test]
fn ns_to_cycles_monotone() {
    prop_check("ns_to_cycles_monotone", 256, |rng| {
        let clk = MemClock::ddr5_6000();
        let a = rng.unit_f64() * 1e6;
        let b = rng.unit_f64() * 1e6;
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_ensure!(
            clk.ns_to_cycles(lo) <= clk.ns_to_cycles(hi),
            "monotonicity broke at {lo} vs {hi}"
        );
        Ok(())
    });
}

#[test]
fn cycles_cover_duration() {
    prop_check("cycles_cover_duration", 256, |rng| {
        // The ceiling conversion must never under-provision time.
        let clk = MemClock::ddr5_6000();
        let ns = rng.unit_f64() * 1e6;
        let cycles = clk.ns_to_cycles(ns);
        prop_ensure!(
            clk.cycles_to_ns(cycles) + 1e-6 >= ns,
            "{cycles} cycles under-provision {ns}ns"
        );
        Ok(())
    });
}

#[test]
fn histogram_totals_conserved() {
    prop_check("histogram_totals_conserved", 128, |rng| {
        let n = 1 + rng.below(199) as usize;
        let values: Vec<u64> = (0..n).map(|_| rng.below(10_000)).collect();
        let mut h = Histogram::new(64, 16);
        for &v in &values {
            h.record(v);
        }
        let bucket_sum: u64 = (0..h.num_buckets()).map(|i| h.bucket_count(i)).sum();
        prop_ensure!(
            bucket_sum + h.overflow() == values.len() as u64,
            "bucket sum {bucket_sum} + overflow {} != {}",
            h.overflow(),
            values.len()
        );
        prop_ensure!(
            h.count_at_or_above(0) == values.len() as u64,
            "count_at_or_above(0) mismatch"
        );
        Ok(())
    });
}

#[test]
fn rng_forks_are_reproducible() {
    prop_check("rng_forks_are_reproducible", 128, |rng| {
        let seed = rng.next_u64();
        let stream = rng.next_u64();
        let mut a = DetRng::from_seed(seed).fork(stream);
        let mut b = DetRng::from_seed(seed).fork(stream);
        for _ in 0..16 {
            prop_ensure!(
                a.next_u64() == b.next_u64(),
                "fork({stream}) of seed {seed:#x} diverged"
            );
        }
        Ok(())
    });
}

#[test]
fn bernoulli_extremes() {
    prop_check("bernoulli_extremes", 128, |rng| {
        let mut r = DetRng::from_seed(rng.next_u64());
        prop_ensure!(!r.bernoulli(0.0), "p=0 returned true");
        prop_ensure!(r.bernoulli(1.0), "p=1 returned false");
        Ok(())
    });
}
