//! Shared infrastructure for the experiment harness.
//!
//! Every table and figure of the paper has a binary in `src/bin/` that
//! prints a paper-vs-measured comparison and appends a CSV file under
//! `EXPERIMENTS-data/`. This library provides the report formatting,
//! CSV output, and budget knobs they share.

#![warn(clippy::unwrap_used, clippy::expect_used)]

use std::fmt::Write as _;
use std::fs;
use std::path::PathBuf;

/// Per-core instruction budget for simulation experiments, overridable
/// with `MOPAC_INSTRS` (the paper uses 100 M; defaults here are sized
/// for a laptop-minutes run as in the artifact's "most evaluations can
/// be done on a laptop").
#[must_use]
pub fn instr_budget() -> u64 {
    std::env::var("MOPAC_INSTRS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(250_000)
}

/// Attack-run cycle budget, overridable with `MOPAC_ATTACK_CYCLES`.
#[must_use]
pub fn attack_cycle_budget() -> u64 {
    std::env::var("MOPAC_ATTACK_CYCLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1_500_000)
}

/// Workload subset for quick runs: `MOPAC_WORKLOADS=xz,parest` restricts
/// sweeps; default is all 23.
#[must_use]
pub fn workload_filter() -> Option<Vec<String>> {
    std::env::var("MOPAC_WORKLOADS")
        .ok()
        .map(|v| v.split(',').map(|s| s.trim().to_string()).collect())
}

/// A table being accumulated for printing and CSV export.
#[derive(Debug, Clone)]
pub struct Report {
    experiment: String,
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Report {
    /// Starts a report for experiment id `experiment` (e.g. `"table7"`)
    /// with a human title.
    #[must_use]
    pub fn new(experiment: &str, title: &str, headers: &[&str]) -> Self {
        Self {
            experiment: experiment.to_string(),
            title: title.to_string(),
            headers: headers.iter().map(|s| (*s).to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics if the column count does not match the headers.
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Appends a row of displayable values.
    pub fn row_display(&mut self, cells: &[&dyn std::fmt::Display]) {
        let cells: Vec<String> = cells.iter().map(ToString::to_string).collect();
        self.row(&cells);
    }

    /// Renders the report as an aligned text table.
    #[must_use]
    pub fn to_table(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} — {} ==", self.experiment, self.title);
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let _ = writeln!(out, "{}", fmt_row(&self.headers, &widths));
        let _ = writeln!(
            out,
            "{}",
            widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("  ")
        );
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths));
        }
        out
    }

    /// Prints the table to stdout and writes
    /// `EXPERIMENTS-data/<experiment>.csv`.
    pub fn emit(&self) {
        println!("{}", self.to_table());
        if let Err(e) = self.write_csv() {
            eprintln!("warning: could not write CSV: {e}");
        }
    }

    /// Writes the CSV file (atomically — a reader or a crash never sees
    /// a half-written table); returns the path written.
    ///
    /// # Errors
    ///
    /// Returns an error if the directory or file cannot be written.
    pub fn write_csv(&self) -> std::io::Result<PathBuf> {
        let dir = data_dir();
        fs::create_dir_all(&dir)?;
        let path = dir.join(format!("{}.csv", self.experiment));
        let mut csv = String::new();
        let _ = writeln!(
            csv,
            "{}",
            self.headers
                .iter()
                .map(|h| csv_escape(h))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                csv,
                "{}",
                row.iter()
                    .map(|c| csv_escape(c))
                    .collect::<Vec<_>>()
                    .join(",")
            );
        }
        mopac_types::persist::atomic_write_str(&path, &csv)?;
        Ok(path)
    }
}

/// Directory for CSV outputs (workspace-root `EXPERIMENTS-data/`, or
/// `MOPAC_DATA_DIR`).
#[must_use]
pub fn data_dir() -> PathBuf {
    std::env::var("MOPAC_DATA_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| {
            // Walk up from the cwd to find the workspace root.
            let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
            for _ in 0..4 {
                if dir.join("Cargo.toml").exists() {
                    break;
                }
                if let Some(parent) = dir.parent() {
                    dir = parent.to_path_buf();
                } else {
                    break;
                }
            }
            dir.join("EXPERIMENTS-data")
        })
}

/// Runs every paper workload (or the `MOPAC_WORKLOADS` subset) under the
/// baseline and each named mitigation config, and builds a slowdown
/// matrix report with a final mean row.
///
/// # Errors
///
/// Propagates any simulation failure (unknown workload, timing
/// violation) instead of aborting the whole sweep with a panic.
pub fn slowdown_matrix(
    experiment: &str,
    title: &str,
    configs: &[(String, mopac::config::MitigationConfig)],
) -> mopac_types::error::MopacResult<Report> {
    use mopac_sim::experiment::run_workload;
    let instrs = instr_budget();
    let names: Vec<String> = workload_filter().unwrap_or_else(|| {
        mopac_workloads::spec::all_names()
            .iter()
            .map(|s| (*s).to_string())
            .collect()
    });
    let mut headers: Vec<&str> = vec!["workload"];
    for (label, _) in configs {
        headers.push(label.as_str());
    }
    let mut r = Report::new(experiment, title, &headers);
    let mut sums = vec![0.0f64; configs.len()];
    for name in &names {
        let base = run_workload(name, mopac::config::MitigationConfig::baseline(), instrs)?;
        let mut cells = vec![name.clone()];
        for (i, (_, cfg)) in configs.iter().enumerate() {
            let run = run_workload(name, *cfg, instrs)?;
            let s = run.slowdown_vs(&base);
            sums[i] += s;
            cells.push(pct(s));
        }
        r.row(&cells);
        eprintln!("  done {name}");
    }
    let mut mean = vec!["mean".to_string()];
    for s in &sums {
        mean.push(pct(s / names.len() as f64));
    }
    r.row(&mean);
    Ok(r)
}

/// A CSV file written one row at a time, flushed after every row, so a
/// campaign killed mid-flight (panic, OOM, ^C) keeps every completed
/// experiment on disk. Lives in [`data_dir`] like [`Report::write_csv`].
#[derive(Debug)]
pub struct IncrementalCsv {
    path: PathBuf,
    file: fs::File,
    columns: usize,
}

impl IncrementalCsv {
    /// Creates (truncating) `<data_dir>/<experiment>.csv`, writes and
    /// flushes the header row.
    ///
    /// # Errors
    ///
    /// Returns an error if the directory or file cannot be created.
    pub fn create(experiment: &str, headers: &[&str]) -> std::io::Result<Self> {
        let dir = data_dir();
        fs::create_dir_all(&dir)?;
        let path = dir.join(format!("{experiment}.csv"));
        let file = fs::File::create(&path)?;
        let mut me = Self {
            path,
            file,
            columns: headers.len(),
        };
        let cells: Vec<String> = headers.iter().map(|h| (*h).to_string()).collect();
        me.append(&cells)?;
        Ok(me)
    }

    /// Appends one row and flushes it to disk immediately.
    ///
    /// # Errors
    ///
    /// Returns an error on a column-count mismatch or a write failure.
    pub fn append(&mut self, cells: &[String]) -> std::io::Result<()> {
        use std::io::Write as _;
        if cells.len() != self.columns {
            return Err(std::io::Error::other(format!(
                "row has {} cells, header has {}",
                cells.len(),
                self.columns
            )));
        }
        let line = cells.iter().map(|c| csv_escape(c)).collect::<Vec<_>>().join(",");
        writeln!(self.file, "{line}")?;
        self.file.flush()
    }

    /// The file being written.
    #[must_use]
    pub fn path(&self) -> &std::path::Path {
        &self.path
    }
}

/// RFC-4180 quoting: wrap in quotes when the cell contains a comma or
/// quote, doubling embedded quotes.
fn csv_escape(s: &str) -> String {
    if s.contains(',') || s.contains('"') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Formats a fraction as a percentage with one decimal.
#[must_use]
pub fn pct(frac: f64) -> String {
    format!("{:.1}%", frac * 100.0)
}

/// Formats a float in scientific notation with two decimals.
#[must_use]
pub fn sci(v: f64) -> String {
    format!("{v:.2e}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut r = Report::new("t", "demo", &["a", "bbbb"]);
        r.row(&["1".into(), "2".into()]);
        let s = r.to_table();
        assert!(s.contains("a  bbbb"));
        assert!(s.contains("1     2"));
    }

    #[test]
    #[should_panic(expected = "column count")]
    fn row_width_checked() {
        let mut r = Report::new("t", "demo", &["a"]);
        r.row(&["1".into(), "2".into()]);
    }

    #[test]
    fn csv_escapes_commas() {
        let mut r = Report::new("unit_csv_test", "demo", &["a,b"]);
        r.row(&["x\"y".into()]);
        let dir = std::env::temp_dir().join("mopac-csv-test");
        std::env::set_var("MOPAC_DATA_DIR", &dir);
        let path = r.write_csv().unwrap();
        let content = std::fs::read_to_string(path).unwrap();
        assert!(content.contains("\"a,b\""));
        assert!(content.contains("\"x\"\"y\""));
        std::env::remove_var("MOPAC_DATA_DIR");
    }

    #[test]
    fn csv_escape_doubles_quotes() {
        assert_eq!(csv_escape("plain"), "plain");
        assert_eq!(csv_escape("a,b"), "\"a,b\"");
        assert_eq!(csv_escape("x\"y"), "\"x\"\"y\"");
    }

    #[test]
    fn pct_and_sci_format() {
        assert_eq!(pct(0.018), "1.8%");
        assert_eq!(sci(8.48e-9), "8.48e-9");
    }
}
