//! Table 7: MoPAC-C parameters (p, C, ATH*) for varying T_RH.

use mopac_analysis::params::mopac_c_params;
use mopac_bench::Report;

fn main() {
    let mut r = Report::new(
        "table7",
        "MoPAC-C parameters (paper Table 7)",
        &["T_RH", "ATH", "p", "C", "ATH*", "paper ATH*"],
    );
    let paper = [(250u64, 80u64), (500, 176), (1000, 368)];
    for (t, want) in paper {
        let p = mopac_c_params(t);
        r.row(&[
            t.to_string(),
            p.ath.to_string(),
            format!("1/{}", p.update_prob_denominator),
            p.critical_updates.to_string(),
            p.ath_star.to_string(),
            want.to_string(),
        ]);
    }
    // Extended range (Figure 1d / intro: p = 1/64 at 4K .. 1/2 at 125).
    for t in [4000u64, 2000, 125] {
        let p = mopac_c_params(t);
        r.row(&[
            t.to_string(),
            p.ath.to_string(),
            format!("1/{}", p.update_prob_denominator),
            p.critical_updates.to_string(),
            p.ath_star.to_string(),
            "-".into(),
        ]);
    }
    r.emit();
}
