//! Figure 4: latency to service a read that conflicts with an open row —
//! the core of PRAC's overhead (paper: 40 ns base vs 62 ns PRAC, 1.55x).

use mopac::config::MitigationConfig;
use mopac_bench::Report;
use mopac_dram::device::{DramConfig, DramDevice};

/// Drives PRE -> ACT -> RD on one bank and returns (total cycles,
/// cycles to first data beat).
fn conflict_latency(mit: MitigationConfig) -> (u64, u64) {
    let mut d = DramDevice::new(DramConfig::tiny(mit));
    // Row A open for a while; a read to row B arrives.
    d.activate(0, 0, 0, 0, false).expect("ACT A");
    let pre_at = d.earliest_precharge(0, 0).unwrap();
    d.precharge(0, 0, pre_at).expect("PRE A");
    let act_at = d.earliest_activate(0, 0).unwrap();
    d.activate(0, 0, 1, act_at, false).expect("ACT B");
    let rd_at = d.earliest_column(0, 0, 1).unwrap();
    let done = d.read(0, 0, rd_at).expect("RD B");
    let first_beat = done - d.timing_default().burst;
    (done - pre_at, first_beat - pre_at)
}

fn main() {
    let (base_total, base_first) = conflict_latency(MitigationConfig::baseline());
    let (prac_total, prac_first) = conflict_latency(MitigationConfig::prac(500));
    let cyc_ns = 1.0 / 3.0;
    let mut r = Report::new(
        "fig4",
        "Row-buffer-conflict read latency (paper Fig 4: 40 ns -> 62 ns, 1.55x)",
        &["config", "PRE->first data (ns)", "PRE->burst end (ns)"],
    );
    r.row(&[
        "base".into(),
        format!("{:.1}", base_first as f64 * cyc_ns),
        format!("{:.1}", base_total as f64 * cyc_ns),
    ]);
    r.row(&[
        "PRAC".into(),
        format!("{:.1}", prac_first as f64 * cyc_ns),
        format!("{:.1}", prac_total as f64 * cyc_ns),
    ]);
    r.row(&[
        "ratio".into(),
        format!("{:.2}x", prac_first as f64 / base_first as f64),
        format!("{:.2}x", prac_total as f64 / base_total as f64),
    ]);
    r.emit();
}
