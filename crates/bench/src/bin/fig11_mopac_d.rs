//! Figure 11: per-workload slowdown of PRAC vs MoPAC-D at
//! T_RH = 1000 / 500 / 250 (paper means: PRAC 10%; MoPAC-D 0.1%, 0.8%,
//! 3.5%).

use mopac::config::MitigationConfig;
use mopac_bench::slowdown_matrix;

fn main() {
    let configs = vec![
        ("PRAC".to_string(), MitigationConfig::prac(500)),
        ("MoPAC-D@1000".to_string(), MitigationConfig::mopac_d(1000)),
        ("MoPAC-D@500".to_string(), MitigationConfig::mopac_d(500)),
        ("MoPAC-D@250".to_string(), MitigationConfig::mopac_d(250)),
    ];
    slowdown_matrix(
        "fig11",
        "PRAC vs MoPAC-D slowdowns (paper Fig 11; means 10% / 0.1% / 0.8% / 3.5%)",
        &configs,
    )
    .expect("slowdown sweep")
    .emit();
}
