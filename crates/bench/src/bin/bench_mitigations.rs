//! Per-engine performance snapshot: slowdown versus the unmitigated
//! baseline for every registered mitigation engine, on a small
//! workload set.
//!
//! Results print as a table and land in workspace-root
//! `BENCH_mitigations.json` (keyed `<engine>` with per-workload and
//! mean slowdowns) for the CI trend line, alongside
//! `BENCH_kernel.json`. Budget knobs: `MOPAC_INSTRS`, `MOPAC_WORKLOADS`
//! (defaults to a representative low/high-MPKI pair).

use mopac::config::MitigationConfig;
use mopac::EngineRegistry;
use mopac_bench::{instr_budget, pct, workload_filter, Report};
use mopac_sim::experiment::run_workload;
use std::fmt::Write as _;

fn main() {
    let instrs = instr_budget();
    let workloads =
        workload_filter().unwrap_or_else(|| vec!["xz".to_string(), "cam4".to_string()]);
    let registry = EngineRegistry::builtin();
    let engines: Vec<_> = registry.specs().iter().filter(|s| s.tracks()).collect();

    let mut headers: Vec<&str> = vec!["engine"];
    for w in &workloads {
        headers.push(w.as_str());
    }
    headers.push("mean");
    let mut r = Report::new(
        "bench_mitigations",
        "Slowdown vs baseline per registered engine",
        &headers,
    );

    let baselines: Vec<_> = workloads
        .iter()
        .map(|w| {
            run_workload(w, MitigationConfig::baseline(), instrs).expect("baseline run")
        })
        .collect();

    let mut json = String::from("{\n");
    for (ei, spec) in engines.iter().enumerate() {
        let cfg = (spec.preset)(500);
        let mut cells = vec![spec.name.to_string()];
        let mut entries = Vec::new();
        let mut sum = 0.0f64;
        for (w, base) in workloads.iter().zip(&baselines) {
            let run = run_workload(w, cfg, instrs).expect("workload run");
            let s = run.slowdown_vs(base);
            sum += s;
            cells.push(pct(s));
            entries.push(format!("\"{w}\": {s:.6}"));
        }
        let mean = sum / workloads.len() as f64;
        cells.push(pct(mean));
        entries.push(format!("\"mean\": {mean:.6}"));
        r.row(&cells);
        let _ = write!(json, "  \"{}\": {{{}}}", spec.name, entries.join(", "));
        json.push_str(if ei + 1 < engines.len() { ",\n" } else { "\n" });
        eprintln!("  done {}", spec.name);
    }
    json.push_str("}\n");
    r.emit();

    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .map_or_else(
            || std::path::PathBuf::from("BENCH_mitigations.json"),
            |root| root.join("BENCH_mitigations.json"),
        );
    mopac_types::persist::atomic_write_str(&path, &json).expect("write BENCH_mitigations.json");
    println!("wrote {}", path.display());
}
