//! Per-engine performance snapshot: slowdown versus the unmitigated
//! baseline for every registered mitigation engine, on a small
//! workload set, plus a recovery-isolation probe: blocked-bank cycles
//! under a fixed ALERT-pressure attack (sub-channel-scope engines
//! stall every bank per recovery; bank-scope `practical` only the
//! alerting one).
//!
//! Results print as a table and land in workspace-root
//! `BENCH_mitigations.json` (keyed `<engine>` with per-workload and
//! mean slowdowns plus `blocked_bank_cycles`) for the CI trend line,
//! alongside `BENCH_kernel.json`. Budget knobs: `MOPAC_INSTRS`,
//! `MOPAC_WORKLOADS` (defaults to a representative low/high-MPKI
//! pair); the attack probe uses a fixed budget so the committed JSON
//! stays reproducible.

use mopac::config::MitigationConfig;
use mopac::EngineRegistry;
use mopac_bench::{instr_budget, pct, workload_filter, Report};
use mopac_sim::attack::{run_attack_instrumented, AttackConfig};
use mopac_sim::experiment::run_workload;
use mopac_types::geometry::{BankRef, DramGeometry};
use mopac_types::obs::SinkConfig;
use mopac_workloads::attack::DoubleSidedHammer;
use std::fmt::Write as _;

/// Cycle budget for the ALERT-pressure probe. Deliberately not tied to
/// `MOPAC_ATTACK_CYCLES`: the committed `BENCH_mitigations.json` is
/// diff-checked by ci.sh, so this number must be identical everywhere.
const ABO_PRESSURE_CYCLES: u64 = 250_000;

/// Runs a double-sided hammer against one bank and reports how many
/// bank-cycles recovery blocking cost: each recovery stall multiplied
/// by the number of banks it froze. A bank-scope engine freezes only
/// the alerting bank, so this is where PRACtical's isolation shows.
fn blocked_bank_cycles(mitigation: MitigationConfig) -> u64 {
    let mut cfg = AttackConfig::new(mitigation, ABO_PRESSURE_CYCLES);
    cfg.geometry = DramGeometry::tiny();
    let mut pattern = DoubleSidedHammer::new(BankRef::new(0, 0), 100);
    let (res, snap) = run_attack_instrumented(&cfg, &mut pattern, SinkConfig::default())
        .expect("blocked-bank probe");
    assert_eq!(res.violations, 0, "probe run must stay oracle-clean");
    snap.counter("dram.blocked_bank_cycles").unwrap_or(0)
}

fn main() {
    let instrs = instr_budget();
    let workloads =
        workload_filter().unwrap_or_else(|| vec!["xz".to_string(), "cam4".to_string()]);
    let registry = EngineRegistry::builtin();
    let engines: Vec<_> = registry.specs().iter().filter(|s| s.tracks()).collect();

    let mut headers: Vec<&str> = vec!["engine"];
    for w in &workloads {
        headers.push(w.as_str());
    }
    headers.push("mean");
    headers.push("blocked bank-cycles @attack");
    let mut r = Report::new(
        "bench_mitigations",
        "Slowdown vs baseline per registered engine",
        &headers,
    );

    let baselines: Vec<_> = workloads
        .iter()
        .map(|w| {
            run_workload(w, MitigationConfig::baseline(), instrs).expect("baseline run")
        })
        .collect();

    let mut json = String::from("{\n");
    for (ei, spec) in engines.iter().enumerate() {
        let cfg = (spec.preset)(500);
        let mut cells = vec![spec.name.to_string()];
        let mut entries = Vec::new();
        let mut sum = 0.0f64;
        for (w, base) in workloads.iter().zip(&baselines) {
            let run = run_workload(w, cfg, instrs).expect("workload run");
            let s = run.slowdown_vs(base);
            sum += s;
            cells.push(pct(s));
            entries.push(format!("\"{w}\": {s:.6}"));
        }
        let mean = sum / workloads.len() as f64;
        cells.push(pct(mean));
        entries.push(format!("\"mean\": {mean:.6}"));
        let blocked = blocked_bank_cycles(cfg);
        cells.push(blocked.to_string());
        entries.push(format!("\"blocked_bank_cycles\": {blocked}"));
        r.row(&cells);
        let _ = write!(json, "  \"{}\": {{{}}}", spec.name, entries.join(", "));
        json.push_str(if ei + 1 < engines.len() { ",\n" } else { "\n" });
        eprintln!("  done {}", spec.name);
    }
    json.push_str("}\n");
    r.emit();

    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .map_or_else(
            || std::path::PathBuf::from("BENCH_mitigations.json"),
            |root| root.join("BENCH_mitigations.json"),
        );
    mopac_types::persist::atomic_write_str(&path, &json).expect("write BENCH_mitigations.json");
    println!("wrote {}", path.display());
}
