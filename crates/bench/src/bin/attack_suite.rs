//! Security gate: every registered mitigation engine versus the attack
//! battery, on the tiny geometry for CI speed.
//!
//! Enumerates [`mopac_sim::attack::attack_suite_configs`] (every engine
//! in the registry that tracks activations) and runs each against every
//! attack pattern with the Rowhammer oracle enabled. A single oracle
//! violation fails the binary — this is the registry-wide version of the
//! per-design security tests, sized for CI by `MOPAC_ATTACK_CYCLES`.

use mopac_bench::{attack_cycle_budget, Report};
use mopac_sim::attack::{attack_suite_configs, run_attack, AttackConfig};
use mopac_types::geometry::{BankRef, DramGeometry};
use mopac_workloads::attack::{
    AttackPattern, DoubleSidedHammer, MultiBankRoundRobin, SingleRowHammer, SrqFillAttack,
    TardinessAttack,
};

/// The attack battery, freshly constructed per engine so pattern state
/// never leaks between runs.
fn battery(geom: DramGeometry) -> Vec<(&'static str, Box<dyn AttackPattern>)> {
    let bank = BankRef::new(0, 0);
    vec![
        ("double-sided", Box::new(DoubleSidedHammer::new(bank, 100))),
        (
            "single-row",
            Box::new(SingleRowHammer::new(bank, 100, 200, 8)),
        ),
        (
            "multi-bank",
            Box::new(MultiBankRoundRobin::new(geom, 99)),
        ),
        ("srq-fill", Box::new(SrqFillAttack::new(bank, 256))),
        ("tardiness", Box::new(TardinessAttack::new(geom, 100))),
    ]
}

fn main() {
    let cycles = attack_cycle_budget();
    let geom = DramGeometry::tiny();
    let mut r = Report::new(
        "attack_suite",
        "Registry-wide attack battery (violations must all be 0)",
        &["engine", "attack", "ACTs", "alerts", "mitigations", "violations"],
    );
    let mut total_violations = 0u64;
    for (engine, cfg) in attack_suite_configs(500, cycles) {
        let cfg = AttackConfig { geometry: geom, ..cfg };
        for (attack, mut pattern) in battery(geom) {
            let res = run_attack(&cfg, pattern.as_mut()).expect("attack run");
            total_violations += res.violations;
            r.row(&[
                engine.to_string(),
                attack.to_string(),
                res.activations.to_string(),
                res.dram.alerts().to_string(),
                res.dram.mitigations.to_string(),
                res.violations.to_string(),
            ]);
        }
        eprintln!("  done {engine}");
    }
    r.emit();
    if total_violations > 0 {
        eprintln!("!! attack_suite: {total_violations} oracle violations");
        std::process::exit(1);
    }
    println!("attack_suite: all engines oracle-clean over {cycles} cycles");
}
