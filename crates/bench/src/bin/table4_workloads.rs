//! Table 4: workload characteristics — validates that the calibrated
//! generators reproduce the paper's MPKI, RBHR, APRI and hot-row skew.
//!
//! MPKI/RBHR/APRI come from a full-system baseline run. The ACT-64+/
//! ACT-200+ columns need a whole 32 ms refresh window of activations,
//! which the timing simulation does not cover at bench budgets, so they
//! are measured by replaying the trace through an untimed row-buffer
//! model for the number of accesses the measured APRI implies per 32 ms.

use mopac::config::MitigationConfig;
use mopac_bench::{instr_budget, workload_filter, Report};
use mopac_cpu::trace::TraceSource;
use mopac_memctrl::mapping::{AddressMapper, Mapping};
use mopac_sim::experiment::{build_traces, run_workload};
use mopac_sim::system::SystemConfig;
use mopac_types::collections::{bank_row_key, DetCounter};
use mopac_types::geometry::DramGeometry;
use mopac_workloads::spec::{all_names, paper_stats};
use std::collections::VecDeque;

/// Replays ~one tREFW worth of accesses through an untimed row-buffer
/// model; returns (rows with >= 64 ACTs, rows with >= 200 ACTs), both
/// per bank.
///
/// A short per-bank window of recently open rows stands in for the
/// FR-FCFS scheduler's ability to coalesce row hits that arrive
/// slightly out of order (without it, interleaved sequential streams
/// look like row-thrashers, which the timed simulation shows they are
/// not).
fn hot_rows(name: &str, accesses_per_trefw: u64) -> (f64, f64) {
    const REORDER_WINDOW: usize = 8;
    let geom = DramGeometry::ddr5_32gb();
    let mapper = AddressMapper::new(geom, Mapping::paper_default());
    let cfg = SystemConfig::paper_default(MitigationConfig::baseline(), 0);
    let mut traces = build_traces(name, &cfg).expect("known workload");
    // Flat-indexed reorder windows and a deterministic activation
    // counter: same accumulator types the library uses, so the table is
    // reproducible independent of hasher seeding.
    let mut open: Vec<VecDeque<u32>> = vec![VecDeque::new(); geom.total_banks() as usize];
    let mut acts = DetCounter::new();
    // The shared LLC absorbs line reuse (hot keys of the Zipf workload)
    // exactly as it does in the timed system.
    let mut llc = mopac_cpu::llc::Llc::paper_default();
    let cap = accesses_per_trefw.min(30_000_000);
    for i in 0..cap {
        let t: &mut Box<dyn TraceSource> = &mut traces[(i % 8) as usize];
        let rec = t.next_record();
        if !llc.access(rec.addr, rec.is_write).is_miss() {
            continue;
        }
        let d = mapper.decode(rec.addr);
        let flat = geom.flat_bank(d.bank.subchannel, d.bank.bank);
        let window = &mut open[flat as usize];
        if !window.contains(&d.row) {
            acts.bump(bank_row_key(flat, d.row));
            window.push_back(d.row);
            if window.len() > REORDER_WINDOW {
                window.pop_front();
            }
        }
    }
    let scale = accesses_per_trefw as f64 / cap as f64;
    let counts = acts.counts();
    let a64 = counts.iter().filter(|&&c| f64::from(c) * scale >= 64.0).count();
    let a200 = counts.iter().filter(|&&c| f64::from(c) * scale >= 200.0).count();
    let banks = f64::from(geom.total_banks());
    (a64 as f64 / banks, a200 as f64 / banks)
}

fn main() {
    let instrs = instr_budget();
    let names: Vec<String> = workload_filter()
        .unwrap_or_else(|| all_names().iter().map(|s| (*s).to_string()).collect());
    let mut r = Report::new(
        "table4",
        "Workload characteristics, measured vs paper Table 4",
        &[
            "workload", "MPKI", "paper", "RBHR", "paper", "APRI", "paper",
            "ACT64+", "paper", "ACT200+", "paper",
        ],
    );
    for name in &names {
        let run = run_workload(name, MitigationConfig::baseline(), instrs).expect("baseline run");
        let total_instrs = 8 * instrs;
        // Demand traffic only: subtract prefetch requests, add back the
        // demand reads the prefetcher absorbed.
        let demand = (run.dram.reads + run.dram.writes + run.prefetch.hits
            + run.prefetch.late_hits)
            .saturating_sub(run.prefetch.issued);
        let mpki = demand as f64 / total_instrs as f64 * 1000.0;
        let rbhr = run.rbhr();
        let apri = run.apri(64);
        // Accesses in one tREFW, extrapolated from the measured run.
        let sim_s = run.cycles as f64 / 3.0e9;
        let accesses =
            ((run.dram.reads + run.dram.writes) as f64 * (0.032 / sim_s)) as u64;
        let (a64, a200) = hot_rows(name, accesses);
        let paper = paper_stats(name);
        let pf = |v: Option<f64>| v.map_or("-".to_string(), |x| format!("{x:.1}"));
        r.row(&[
            name.clone(),
            format!("{mpki:.1}"),
            pf(paper.map(|p| p.mpki)),
            format!("{rbhr:.2}"),
            pf(paper.map(|p| p.rbhr)),
            format!("{apri:.1}"),
            pf(paper.map(|p| p.apri)),
            format!("{a64:.1}"),
            pf(paper.map(|p| p.act64)),
            format!("{a200:.1}"),
            pf(paper.map(|p| p.act200)),
        ]);
        eprintln!("  done {name}");
    }
    r.emit();
}
