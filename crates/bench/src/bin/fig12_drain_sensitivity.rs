//! Figure 12: MoPAC-D slowdown vs drain-on-REF rate (0 / 1 / 2 / 4
//! entries) at T_RH = 1000 / 500 / 250.

use mopac::config::MitigationConfig;
use mopac_bench::slowdown_matrix;

fn main() {
    let mut configs = Vec::new();
    for t in [1000u64, 500, 250] {
        for drain in [0u32, 1, 2, 4] {
            configs.push((
                format!("T{t}/d{drain}"),
                MitigationConfig::mopac_d(t).with_drain_on_ref(drain),
            ));
        }
    }
    slowdown_matrix(
        "fig12",
        "MoPAC-D vs drain-on-REF (paper Fig 12; means T1000: 3.1/0.1/0/0%, \
         T500: 6.2/2.9/0.8/0.1%, T250: 14.1/10.5/7.4/3.5%)",
        &configs,
    )
    .expect("slowdown sweep")
    .emit();
}
