//! Figure 2: per-workload slowdown of PRAC+ABO (with MOAT) at
//! T_RH = 4000, 500 and 100.
//!
//! The paper's headline: the slowdown is identical across thresholds
//! (~10% average, 18% worst case) because it is pure timing overhead,
//! not ABO.

use mopac::config::MitigationConfig;
use mopac_bench::{instr_budget, pct, workload_filter, Report};
use mopac_sim::experiment::run_workload;
use mopac_workloads::spec::all_names;

fn main() {
    let instrs = instr_budget();
    let names: Vec<String> = workload_filter()
        .unwrap_or_else(|| all_names().iter().map(|s| (*s).to_string()).collect());
    let thresholds = [4000u64, 500, 100];
    let mut r = Report::new(
        "fig2",
        "PRAC slowdown per workload at T_RH = 4000 / 500 / 100 \
         (paper: ~identical across thresholds, 10% avg)",
        &["workload", "T=4000", "T=500", "T=100", "alerts@500"],
    );
    let mut sums = [0.0f64; 3];
    for name in &names {
        let base = run_workload(name, MitigationConfig::baseline(), instrs).expect("baseline run");
        let mut cells = vec![name.clone()];
        let mut alerts500 = 0;
        for (i, &t) in thresholds.iter().enumerate() {
            let run = run_workload(name, MitigationConfig::prac(t), instrs).expect("PRAC run");
            let s = run.slowdown_vs(&base);
            sums[i] += s;
            cells.push(pct(s));
            if t == 500 {
                alerts500 = run.dram.alerts();
            }
        }
        cells.push(alerts500.to_string());
        r.row(&cells);
        eprintln!("  done {name}");
    }
    let n = names.len() as f64;
    r.row(&[
        "mean".into(),
        pct(sums[0] / n),
        pct(sums[1] / n),
        pct(sums[2] / n),
        "-".into(),
    ]);
    r.emit();
    println!("paper: 10% average, 18% worst case, invariant in T_RH");
}
