//! Table 13: tolerated T_RH for MoPAC-D, MINT and PrIDE as the time
//! reserved for Rowhammer mitigation per REF is varied.

use mopac_analysis::related::table13_rows;
use mopac_bench::Report;

fn main() {
    let mut r = Report::new(
        "table13",
        "Tolerated T_RH vs mitigation time per REF (paper Table 13)",
        &[
            "ns/REF",
            "MoPAC-D",
            "paper",
            "MINT",
            "paper",
            "PrIDE",
            "paper",
        ],
    );
    let paper = [
        (240u64, 250u64, 1491u64, 1975u64),
        (120, 500, 2920, 3808),
        (60, 1000, 5725, 7474),
    ];
    for (row, (ns, mp, mi, pr)) in table13_rows().iter().zip(paper) {
        assert_eq!(row.mitigation_ns_per_ref, ns);
        r.row(&[
            ns.to_string(),
            row.mopac_d.to_string(),
            mp.to_string(),
            row.mint.to_string(),
            mi.to_string(),
            row.pride.to_string(),
            pr.to_string(),
        ]);
    }
    r.emit();
    println!(
        "headline: MoPAC-D tolerates ~6x lower T_RH than MINT and ~8x \
         lower than PrIDE at equal time budget"
    );
}
