//! Measures the wall-clock cost of periodic crash-safety snapshots on a
//! saturated attack run.
//!
//! Runs the same double-sided hammer twice: once straight through, once
//! pausing every `MOPAC_SNAP_REF_WINDOWS` (default 32) REF intervals to
//! take a full [`AttackRun::snapshot`]. Results must stay bit-identical
//! (the snapshot is a pure observer), and the relative slowdown is
//! printed as `snapshot_overhead_pct: <value>` — `ci.sh` gates it below
//! 5% in release builds.

use mopac::config::MitigationConfig;
use mopac_bench::attack_cycle_budget;
use mopac_dram::timing::TimingSet;
use mopac_sim::{AttackConfig, AttackResult, AttackRun};
use mopac_types::geometry::{BankRef, DramGeometry};
use mopac_workloads::attack::DoubleSidedHammer;
use std::time::Instant;

fn run_once(cfg: &AttackConfig, snap_interval: Option<u64>) -> (AttackResult, f64, usize, usize) {
    let mut pattern = DoubleSidedHammer::new(BankRef::new(0, 0), 100);
    let mut run = AttackRun::new(cfg, &mut pattern);
    let start = Instant::now();
    let mut snaps = 0usize;
    let mut bytes = 0usize;
    match snap_interval {
        None => run.run_until(run.end()).expect("attack run"),
        Some(interval) => {
            while run.now() < run.end() {
                run.run_until(run.now() + interval).expect("attack run");
                bytes += run.snapshot().len();
                snaps += 1;
            }
        }
    }
    let elapsed = start.elapsed().as_secs_f64();
    (run.result(), elapsed, snaps, bytes)
}

fn main() {
    let ref_windows = std::env::var("MOPAC_SNAP_REF_WINDOWS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(32u64)
        .max(1);
    let interval = TimingSet::ddr5_base().t_refi * ref_windows;
    let cfg = AttackConfig {
        geometry: DramGeometry::tiny(),
        ..AttackConfig::new(MitigationConfig::prac(500), attack_cycle_budget())
    };

    // Warm-up (page in code and allocator paths), then best-of-3 each
    // to keep scheduler noise out of the ratio.
    let _ = run_once(&cfg, None);
    let mut plain = None;
    let mut t_plain = f64::INFINITY;
    let mut snapped = None;
    let mut t_snap = f64::INFINITY;
    let mut snaps = 0;
    let mut bytes = 0;
    for _ in 0..3 {
        let (r, t, _, _) = run_once(&cfg, None);
        if t < t_plain {
            t_plain = t;
        }
        plain = Some(r);
        let (r, t, s, b) = run_once(&cfg, Some(interval));
        if t < t_snap {
            t_snap = t;
        }
        (snapped, snaps, bytes) = (Some(r), s, b);
    }
    let (plain, snapped) = (plain.expect("measured"), snapped.expect("measured"));

    assert_eq!(
        plain.activations, snapped.activations,
        "snapshots perturbed the run"
    );
    assert_eq!(plain.dram, snapped.dram, "snapshots perturbed DRAM state");

    let overhead = (t_snap - t_plain) / t_plain.max(1e-9) * 100.0;
    println!(
        "saturated attack, {} cycles: plain {t_plain:.3}s, {snaps} snapshot(s) every {ref_windows} REF windows ({interval} cycles, {bytes} bytes total) {t_snap:.3}s",
        cfg.cycles
    );
    println!("snapshot_overhead_pct: {overhead:.2}");
}
