//! Table 12: SRQ insertions per 100 activations, MoPAC-D uniform vs NUP
//! (paper: 6.2 vs 3.1 at p=1/16; 12.5 vs 6.3 at 1/8; 25.0 vs 13.4 at
//! 1/4).

use mopac::config::MitigationConfig;
use mopac_bench::{instr_budget, workload_filter, Report};
use mopac_sim::experiment::run_workload;
use mopac_workloads::spec::all_names;

/// SRQ insertions per 100 ACTs, per chip (stats sum over chips).
fn rate(cfg: MitigationConfig, names: &[String], instrs: u64) -> f64 {
    let mut insertions = 0u64;
    let mut acts = 0u64;
    for name in names {
        let run = run_workload(name, cfg, instrs).expect("workload run");
        insertions += run.mitigation.srq_insertions;
        acts += run.dram.activates;
        eprintln!("  done {name} ({cfg:?} T={})", cfg.t_rh);
    }
    insertions as f64 / u64::from(cfg.chips) as f64 / acts as f64 * 100.0
}

fn main() {
    let instrs = instr_budget();
    let names: Vec<String> = workload_filter()
        .unwrap_or_else(|| all_names().iter().map(|s| (*s).to_string()).collect());
    let mut r = Report::new(
        "table12",
        "SRQ insertions per 100 ACTs (paper Table 12)",
        &["T_RH", "p", "uniform", "paper", "NUP", "paper"],
    );
    let paper = [
        (1000u64, "1/16", 6.2, 3.1),
        (500, "1/8", 12.5, 6.3),
        (250, "1/4", 25.0, 13.4),
    ];
    for (t, p, uni_want, nup_want) in paper {
        let uni = rate(MitigationConfig::mopac_d(t), &names, instrs);
        let nup = rate(MitigationConfig::mopac_d_nup(t), &names, instrs);
        r.row(&[
            t.to_string(),
            p.to_string(),
            format!("{uni:.1}"),
            format!("{uni_want:.1}"),
            format!("{nup:.1}"),
            format!("{nup_want:.1}"),
        ]);
    }
    r.emit();
}
