//! Shard-handoff micro-bench: what one fork-join sync round costs, and
//! what macro-batching buys back.
//!
//! Two measurements, both landing in workspace-root `BENCH_shard.json`
//! (written atomically — a crash never leaves a torn file):
//!
//! 1. `sync_round/t{1,2,4}` — wall-clock nanoseconds per
//!    `ChannelSet::tick_range` round with H=1 and `fork_min` 1 on an
//!    *idle* 4-channel set: essentially no simulation work, so t2/t4
//!    minus t1 is the raw fork-join round-trip the per-cycle sharded
//!    loop used to pay on every DRAM cycle.
//! 2. `mc4_batched/t{1,2,4}` vs `mc4_per_cycle/t{1,2,4}` — simulated
//!    cycles/s for the saturated 4-channel, 8-core workload with macro
//!    batching on (production default) and forced off
//!    (`System::debug_set_batching(false)`), showing the handoff
//!    amortization end to end.
//!
//! Knobs: `MOPAC_INSTRS` (per-core budget for the throughput half,
//! default 25000).

use mopac::config::MitigationConfig;
use mopac_cpu::trace::{ReplayTrace, TraceRecord, TraceSource};
use mopac_dram::device::{DramConfig, DramDevice};
use mopac_memctrl::controller::{McConfig, MemoryController};
use mopac_sim::shard::ChannelSet;
use mopac_sim::system::{KernelMode, System, SystemConfig};
use mopac_types::addr::PhysAddr;
use mopac_types::geometry::DramGeometry;
use std::fmt::Write as _;
use std::time::Instant;

fn budget() -> u64 {
    std::env::var("MOPAC_INSTRS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(25_000)
}

/// Median of an odd-length (or any non-empty) set of timings.
fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(f64::total_cmp);
    xs[xs.len() / 2]
}

// ---- measurement 1: ns per sync round, near-empty work -------------

fn idle_set(threads: usize) -> ChannelSet {
    let geom = DramGeometry {
        channels: 4,
        ..DramGeometry::tiny()
    };
    let mcs = (0..geom.channels)
        .map(|ch| {
            let dram = DramDevice::new(DramConfig {
                geometry: geom.channel_view(),
                mitigation: MitigationConfig::prac(500),
                enable_checker: false,
                seed: 0x5AAD ^ u64::from(ch),
                channel: ch,
                flip: None,
            });
            MemoryController::new(dram, McConfig::default())
        })
        .collect();
    let mut cs = ChannelSet::new(mcs, threads);
    // Force even H=1 ranges through the fork path: the whole point is
    // to price the round-trip the production `fork_min` exists to avoid.
    cs.set_fork_min(1);
    cs
}

fn sync_round_ns(threads: usize, rounds: u64) -> f64 {
    let mut cs = idle_set(threads);
    let mut out = Vec::new();
    let mut now = 0;
    for _ in 0..2_000 {
        cs.tick_range(now, now + 1, &mut out).expect("warm-up round");
        now += 1;
    }
    let mut blocks = Vec::new();
    for _ in 0..3 {
        let t0 = Instant::now();
        for _ in 0..rounds {
            cs.tick_range(now, now + 1, &mut out).expect("timed round");
            now += 1;
        }
        blocks.push(t0.elapsed().as_nanos() as f64 / rounds as f64);
        out.clear();
    }
    median(blocks)
}

// ---- measurement 2: batched vs per-cycle end-to-end throughput -----

fn mc4_config(instrs: u64, threads: usize) -> SystemConfig {
    let mut cfg = SystemConfig::paper_default(MitigationConfig::prac(500), instrs);
    cfg.geometry = DramGeometry {
        channels: 4,
        ..DramGeometry::tiny()
    };
    cfg.kernel = KernelMode::EventDriven;
    cfg.shard_threads = threads;
    cfg
}

/// Same row-conflict ping-pong as the `kernel_throughput` mc4 workload:
/// MOP stripes the dense line stride across all four channels.
fn conflict_trace(core: u64) -> Box<dyn TraceSource> {
    let geom = DramGeometry::tiny();
    let row_bytes = u64::from(geom.row_bytes);
    let records = (0..256u64)
        .map(|i| TraceRecord {
            gap: 0,
            addr: PhysAddr::new(((i + core) % 2) * row_bytes * 64 + (i + core * 13) * 64),
            is_write: false,
        })
        .collect();
    Box::new(ReplayTrace::new("mc4_saturated", records))
}

fn run_throughput(instrs: u64, threads: usize, batched: bool) -> (u64, f64) {
    let traces = || (0..8).map(conflict_trace).collect::<Vec<_>>();
    let mut cycles = 0;
    let mut times = Vec::new();
    // First iteration is the warm-up; time the remaining three.
    for i in 0..4 {
        let mut sys =
            System::new(mc4_config(if i == 0 { instrs / 4 } else { instrs }, threads), traces())
                .expect("build system");
        if !batched {
            sys.debug_set_batching(false);
        }
        let t0 = Instant::now();
        let result = sys.run().expect("run");
        if i > 0 {
            times.push(t0.elapsed().as_secs_f64());
            cycles = result.cycles;
        }
    }
    (cycles, median(times))
}

fn main() {
    let instrs = budget();
    let mut json = String::from("{\n");
    let mut entries: Vec<String> = Vec::new();

    println!("sync-round cost (idle 4-channel set, H=1 ranges, fork_min=1):");
    for threads in [1usize, 2, 4] {
        let ns = sync_round_ns(threads, 50_000);
        println!("  t{threads}: {ns:>10.1} ns/round");
        entries.push(format!(
            "  \"sync_round/t{threads}\": {{\"rounds\": 50000, \"ns_per_round\": {ns:.1}}}"
        ));
    }

    println!("mc4_saturated throughput, batched vs per-cycle ({instrs} instrs/core):");
    let mut batched_t1 = 0.0;
    for (label, batched) in [("mc4_batched", true), ("mc4_per_cycle", false)] {
        for threads in [1usize, 2, 4] {
            let (cycles, secs) = run_throughput(instrs, threads, batched);
            let cps = cycles as f64 / secs;
            if batched && threads == 1 {
                batched_t1 = cps;
            }
            println!(
                "  {label:<14} t{threads}: {cycles:>9} cycles in {secs:>7.3}s = {cps:>11.0} cycles/s ({:.2}x of batched t1)",
                cps / batched_t1
            );
            entries.push(format!(
                "  \"{label}/t{threads}\": {{\"cycles\": {cycles}, \"secs\": {secs:.6}, \"cycles_per_sec\": {cps:.0}}}"
            ));
        }
    }

    let _ = write!(json, "{}", entries.join(",\n"));
    json.push_str("\n}\n");
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .map_or_else(
            || std::path::PathBuf::from("BENCH_shard.json"),
            |root| root.join("BENCH_shard.json"),
        );
    mopac_types::persist::atomic_write_str(&path, &json).expect("write BENCH_shard.json");
    println!("wrote {}", path.display());
}
