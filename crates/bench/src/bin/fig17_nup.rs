//! Figure 17 (and the artifact's Fig 15): MoPAC-D with and without
//! non-uniform probability at T_RH = 1000 / 500 / 250.

use mopac::config::MitigationConfig;
use mopac_bench::slowdown_matrix;

fn main() {
    let mut configs = Vec::new();
    for t in [1000u64, 500, 250] {
        configs.push((format!("uniform@{t}"), MitigationConfig::mopac_d(t)));
        configs.push((format!("NUP@{t}"), MitigationConfig::mopac_d_nup(t)));
    }
    slowdown_matrix(
        "fig17",
        "MoPAC-D uniform vs NUP (paper Fig 17; means uniform 0.1/0.8/3.5%, \
         NUP 0/0/1.1%)",
        &configs,
    )
    .expect("slowdown sweep")
    .emit();
}
