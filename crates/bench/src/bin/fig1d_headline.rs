//! Figure 1(d): the headline — average slowdown of PRAC vs MoPAC as the
//! Rowhammer threshold scales from 4000 (near-term) to 125 (long-term).
//!
//! Paper: PRAC stays ~10% across the range; MoPAC grows from 0.2% at 4K
//! to ~1.5% at 500 and 2.5% at 250.

use mopac::config::MitigationConfig;
use mopac_bench::{instr_budget, pct, workload_filter, Report};
use mopac_sim::experiment::run_workload;
use mopac_workloads::spec::all_names;

fn mean_slowdown(
    cfg: MitigationConfig,
    bases: &[(String, mopac_sim::RunResult)],
    instrs: u64,
) -> f64 {
    let mut total = 0.0;
    for (name, base) in bases {
        let run = run_workload(name, cfg, instrs).expect("workload run");
        total += run.slowdown_vs(base);
    }
    total / bases.len() as f64
}

fn main() {
    let instrs = instr_budget();
    let names: Vec<String> = workload_filter()
        .unwrap_or_else(|| all_names().iter().map(|s| (*s).to_string()).collect());
    // Baselines once per workload, shared across every threshold.
    let bases: Vec<(String, mopac_sim::RunResult)> = names
        .iter()
        .map(|n| {
            let b = run_workload(n, MitigationConfig::baseline(), instrs).expect("baseline run");
            (n.clone(), b)
        })
        .collect();
    let mut r = Report::new(
        "fig1d",
        "Mean slowdown vs T_RH (paper Fig 1d: PRAC ~10% flat; MoPAC 0.2% -> 2.5%)",
        &["T_RH", "PRAC", "MoPAC-C", "MoPAC-D"],
    );
    // PRAC's overhead is threshold-invariant; measure once.
    let prac = mean_slowdown(MitigationConfig::prac(500), &bases, instrs);
    eprintln!("PRAC mean: {}", pct(prac));
    for t in [4000u64, 2000, 1000, 500, 250, 125] {
        let c = mean_slowdown(MitigationConfig::mopac_c(t), &bases, instrs);
        let d = mean_slowdown(MitigationConfig::mopac_d(t), &bases, instrs);
        r.row(&[t.to_string(), pct(prac), pct(c), pct(d)]);
        eprintln!("done T_RH = {t}");
    }
    r.emit();
}
