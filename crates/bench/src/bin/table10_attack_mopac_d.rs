//! Table 10: the three performance attacks on MoPAC-D (mitigation,
//! SRQ-full, tardiness) — analytic model plus simulated runs.

use mopac::config::MitigationConfig;
use mopac_analysis::params::mopac_d_params;
use mopac_analysis::perf_attack::{
    mitigation_attack_slowdown, srq_full_attack_slowdown, tth_attack_slowdown, PAPER_ALPHA,
};
use mopac_bench::{attack_cycle_budget, pct, Report};
use mopac_sim::attack::{run_attack, AttackConfig, AttackResult};
use mopac_types::geometry::{BankRef, DramGeometry};
use mopac_workloads::attack::{AttackPattern, MultiBankRoundRobin, SrqFillAttack, TardinessAttack};

fn simulate(mit: MitigationConfig, pattern: &mut dyn AttackPattern, cycles: u64) -> AttackResult {
    run_attack(&AttackConfig::new(mit, cycles), pattern).expect("attack run")
}

fn main() {
    let cycles = attack_cycle_budget();
    let geom = DramGeometry::ddr5_32gb();
    let mut r = Report::new(
        "table10",
        "Performance attacks on MoPAC-D (paper Table 10)",
        &[
            "T_RH",
            "attack",
            "model",
            "paper",
            "simulated loss",
            "violations",
        ],
    );
    let paper = [
        (250u64, "16.6%", "25.9%", "17.9%"),
        (500, "7.4%", "14.9%", "17.9%"),
        (1000, "3.5%", "8.1%", "17.9%"),
    ];
    for (t, mitig_p, srq_p, tth_p) in paper {
        let params = mopac_d_params(t);
        let mit = MitigationConfig::mopac_d(t);
        // Reference throughputs per pattern shape (no mitigation).
        let mut base_mb = MultiBankRoundRobin::new(geom, 99);
        let base_multi = simulate(MitigationConfig::baseline(), &mut base_mb, cycles);
        let mut base_sf = SrqFillAttack::new(BankRef::new(0, 0), 4096);
        let base_single = simulate(MitigationConfig::baseline(), &mut base_sf, cycles);

        let mut p1 = MultiBankRoundRobin::new(geom, 99);
        let mitig = simulate(mit, &mut p1, cycles);
        let mut p2 = SrqFillAttack::new(BankRef::new(0, 0), 4096);
        let srq = simulate(mit, &mut p2, cycles);
        let mut p3 = TardinessAttack::new(geom, 99);
        let tth = simulate(mit, &mut p3, cycles);

        let rows: [(&str, f64, &str, &AttackResult, &AttackResult); 3] = [
            (
                "mitigation",
                mitigation_attack_slowdown(&params, PAPER_ALPHA),
                mitig_p,
                &mitig,
                &base_multi,
            ),
            (
                "SRQ-full",
                srq_full_attack_slowdown(&params, 5),
                srq_p,
                &srq,
                &base_single,
            ),
            (
                "tardiness",
                tth_attack_slowdown(params.tth),
                tth_p,
                &tth,
                &base_multi,
            ),
        ];
        for (name, model, want, res, base) in rows {
            r.row(&[
                t.to_string(),
                name.to_string(),
                pct(model),
                want.to_string(),
                pct(res.throughput_loss_vs(base)),
                res.violations.to_string(),
            ]);
        }
    }
    r.emit();
}
