//! Table 14 (Appendix A): ATH* modified for Row-Press protection.

use mopac_analysis::params::{row_press_params, MopacDesign};
use mopac_bench::Report;

fn main() {
    let mut r = Report::new(
        "table14",
        "Row-Press-hardened ATH* (paper Table 14)",
        &[
            "T_RH",
            "p",
            "ATH* MoPAC-C",
            "paper",
            "ATH* MoPAC-D",
            "paper",
        ],
    );
    let paper = [(500u64, 80u64, 64u64), (1000, 160, 144)];
    for (t, c_want, d_want) in paper {
        let c = row_press_params(MopacDesign::ControllerSide, t);
        let d = row_press_params(MopacDesign::DramSide, t);
        r.row(&[
            t.to_string(),
            format!("1/{}", c.update_prob_denominator),
            c.ath_star.to_string(),
            c_want.to_string(),
            d.ath_star.to_string(),
            d_want.to_string(),
        ]);
    }
    r.emit();
}
