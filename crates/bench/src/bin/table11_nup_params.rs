//! Table 11: ATH* for MoPAC-D with uniform vs non-uniform probability
//! (Markov-chain analysis, Equation 9).

use mopac_analysis::markov::nup_params;
use mopac_analysis::params::mopac_d_params;
use mopac_bench::Report;

fn main() {
    let mut r = Report::new(
        "table11",
        "ATH* of MoPAC-D vs MoPAC-D+NUP (paper Table 11)",
        &[
            "T_RH",
            "p",
            "uniform ATH*",
            "paper",
            "NUP ATH*",
            "paper",
        ],
    );
    let paper = [
        (1000u64, 336u64, 288u64),
        (500, 152, 136),
        (250, 60, 56),
    ];
    for (t, uni_want, nup_want) in paper {
        let uni = mopac_d_params(t);
        let nup = nup_params(t);
        r.row(&[
            t.to_string(),
            format!("1/{}", uni.update_prob_denominator),
            uni.ath_star.to_string(),
            uni_want.to_string(),
            nup.ath_star.to_string(),
            nup_want.to_string(),
        ]);
    }
    r.emit();
}
