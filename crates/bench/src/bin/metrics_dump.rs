//! Observability export: run one Table-4 workload and one attack
//! pattern with the metrics sink enabled and dump everything the sink
//! recorded — registry counters, gauges, latency histograms with
//! percentiles, and the protocol trace ring — as JSONL and CSV under
//! `EXPERIMENTS-data/`.
//!
//! Outputs per scenario (`metrics_<scenario>`):
//! - `metrics_<scenario>.jsonl` — counters, gauges, histograms, events.
//! - `metrics_<scenario>_hist.csv` — one row per labeled histogram
//!   (read latency, inter-ACT gap, ABO service time, SRQ occupancy,
//!   row open time) with count/min/max/mean/p50/p95/p99.
//! - `metrics_<scenario>_trace.csv` — the trace ring, oldest first.
//!
//! Knobs: `MOPAC_INSTRS` (workload budget), `MOPAC_ATTACK_CYCLES`,
//! `MOPAC_WORKLOADS` (first entry picks the workload; default `xz`),
//! `MOPAC_TRACE_CAPACITY` (ring size, default 65536).

use mopac::config::MitigationConfig;
use mopac_bench::{attack_cycle_budget, data_dir, instr_budget, workload_filter, Report};
use mopac_sim::attack::{run_attack_instrumented, AttackConfig};
use mopac_sim::experiment::build_traces;
use mopac_sim::system::{System, SystemConfig};
use mopac_types::geometry::{BankRef, DramGeometry};
use mopac_types::obs::{MetricsSnapshot, SinkConfig, TraceRing};
use mopac_workloads::attack::DoubleSidedHammer;

fn sink_config() -> SinkConfig {
    let mut cfg = SinkConfig::default();
    if let Some(cap) = std::env::var("MOPAC_TRACE_CAPACITY")
        .ok()
        .and_then(|v| v.parse().ok())
    {
        cfg.trace_capacity = cap;
    }
    cfg
}

/// Writes the three export files for one scenario and summarizes the
/// histograms into the combined report.
fn dump(scenario: &str, snapshot: &MetricsSnapshot, table: &mut Report) {
    let dir = data_dir();
    std::fs::create_dir_all(&dir).expect("create data dir");
    let jsonl = dir.join(format!("metrics_{scenario}.jsonl"));
    mopac_types::persist::atomic_write_str(&jsonl, &snapshot.to_jsonl()).expect("write jsonl");
    let hist_csv = dir.join(format!("metrics_{scenario}_hist.csv"));
    mopac_types::persist::atomic_write_str(&hist_csv, &snapshot.hists_to_csv()).expect("write hist csv");
    let trace_csv = dir.join(format!("metrics_{scenario}_trace.csv"));
    let mut trace = String::from(TraceRing::CSV_HEADER);
    trace.push('\n');
    for e in &snapshot.events {
        trace.push_str(&e.to_csv_row());
        trace.push('\n');
    }
    mopac_types::persist::atomic_write_str(&trace_csv, &trace).expect("write trace csv");
    for h in &snapshot.hists {
        table.row(&[
            scenario.to_string(),
            h.name.to_string(),
            h.label.to_string(),
            h.count.to_string(),
            format!("{:.1}", h.mean),
            h.p50.to_string(),
            h.p95.to_string(),
            h.p99.to_string(),
        ]);
    }
    eprintln!(
        "  {scenario}: {} events ({} dropped), {} histograms -> {}",
        snapshot.events.len(),
        snapshot.counter("trace.events_dropped").unwrap_or(0),
        snapshot.hists.len(),
        jsonl.display()
    );
}

fn main() {
    let sink_cfg = sink_config();
    let mut table = Report::new(
        "metrics_dump",
        "Observability export: histogram summaries per scenario",
        &["scenario", "hist", "label", "count", "mean", "p50", "p95", "p99"],
    );

    // Scenario 1: a Table-4 workload under MoPAC-d on the full-system
    // simulator.
    let workload = workload_filter()
        .and_then(|v| v.into_iter().next())
        .unwrap_or_else(|| "xz".to_string());
    let mut cfg = SystemConfig::paper_default(MitigationConfig::mopac_d(500), instr_budget());
    cfg.metrics = Some(sink_cfg);
    let traces = build_traces(&workload, &cfg).expect("build workload traces");
    let (run, snapshot) = System::new(cfg, traces)
        .expect("build system")
        .run_with_metrics()
        .expect("workload run");
    let snapshot = snapshot.expect("metrics were enabled");
    eprintln!(
        "workload {workload}: {} cycles, avg read latency {:.1}",
        run.cycles, run.avg_read_latency
    );
    dump(&workload, &snapshot, &mut table);

    // Scenario 2: a double-sided hammer against MoPAC-d on the tiny
    // geometry (ALERT/RFM activity shows up in the ABO service-time
    // histogram and the trace ring).
    let attack_cfg = AttackConfig {
        geometry: DramGeometry::tiny(),
        ..AttackConfig::new(MitigationConfig::mopac_d(500), attack_cycle_budget())
    };
    let mut pattern = DoubleSidedHammer::new(BankRef::new(0, 0), 100);
    let (attack, attack_snapshot) =
        run_attack_instrumented(&attack_cfg, &mut pattern, sink_cfg).expect("attack run");
    eprintln!(
        "attack double-sided: {} ACTs, {} alerts, {} violations",
        attack.activations,
        attack.dram.alerts(),
        attack.violations
    );
    dump("attack_double_sided", &attack_snapshot, &mut table);

    table.emit();
}
