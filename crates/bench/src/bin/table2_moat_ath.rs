//! Table 2: the MOAT ALERT threshold (ATH) as T_RH varies.

use mopac_analysis::moat::{moat_ath, moat_eth};
use mopac_bench::Report;

fn main() {
    let mut r = Report::new(
        "table2",
        "MOAT ALERT threshold (paper Table 2: 975 / 472 / 219)",
        &["T_RH", "ATH (paper)", "ATH (ours)", "ETH"],
    );
    let paper = [(1000u64, 975u64), (500, 472), (250, 219)];
    for (t, want) in paper {
        let ath = moat_ath(t);
        r.row(&[
            t.to_string(),
            want.to_string(),
            ath.to_string(),
            moat_eth(ath).to_string(),
        ]);
    }
    // Extrapolated points used by Figures 1(d) and 2.
    for t in [4000u64, 2000, 125] {
        let ath = moat_ath(t);
        r.row(&[
            t.to_string(),
            "-".into(),
            ath.to_string(),
            moat_eth(ath).to_string(),
        ]);
    }
    r.emit();
}
