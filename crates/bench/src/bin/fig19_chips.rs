//! Figure 19 (Appendix B): MoPAC-D slowdown vs number of chips per
//! sub-channel (1 / 2 / 4 / 8 / 16).

use mopac::config::MitigationConfig;
use mopac_bench::slowdown_matrix;

fn main() {
    let mut configs = Vec::new();
    for t in [1000u64, 500, 250] {
        for chips in [1u32, 2, 4, 8, 16] {
            configs.push((
                format!("T{t}/x{chips}"),
                MitigationConfig::mopac_d(t).with_chips(chips),
            ));
        }
    }
    slowdown_matrix(
        "fig19",
        "MoPAC-D vs chip count (paper Fig 19; at T250: 2.7/3.1/3.5/3.9/4.2%)",
        &configs,
    )
    .expect("slowdown sweep")
    .emit();
}
