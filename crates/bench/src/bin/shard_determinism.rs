//! Shard-determinism evidence: run a 4-channel, 8-core, row-conflict
//! saturated system under MoPAC-d and write every observable artifact —
//! the per-core/merged-stats report CSV, the metrics-snapshot JSONL,
//! and the FNV digest of a mid-run snapshot — to files named by
//! `MOPAC_SHARD_TAG`. ci.sh runs this twice (`MOPAC_SHARD_THREADS=1`
//! then `4`) and byte-compares the outputs: intra-run channel sharding
//! must be bit-identical to the serial loop at every thread count
//! (DESIGN.md §13).
//!
//! Knobs: `MOPAC_SHARD_THREADS` (thread count under test, default 1),
//! `MOPAC_SHARD_TAG` (output-file suffix, default `t<threads>`),
//! `MOPAC_INSTRS` (per-core budget, default 20000),
//! `MOPAC_SHARD_BATCH` (`0` disables macro batching so ci.sh can
//! byte-compare batched vs per-cycle stepping).

use mopac::config::MitigationConfig;
use mopac_bench::{data_dir, instr_budget, Report};
use mopac_cpu::trace::{ReplayTrace, TraceRecord, TraceSource};
use mopac_sim::shard::resolve_shard_threads;
use mopac_sim::system::{System, SystemConfig};
use mopac_types::addr::PhysAddr;
use mopac_types::geometry::DramGeometry;
use mopac_types::obs::SinkConfig;
use mopac_types::snapshot::fnv1a64;

/// Row-conflict ping-pong: consecutive accesses alternate between two
/// distant row groups, with per-core phase offsets so all four
/// channels' queues stay saturated (MOP stripes the stream across
/// channels before returning to a bank).
fn conflict_trace(core: u64, row_bytes: u64) -> Box<dyn TraceSource> {
    let records = (0..512u64)
        .map(|i| TraceRecord {
            gap: 0,
            addr: PhysAddr::new(((i + core * 7) % 2) * row_bytes * 64 + (i + core * 13) * 64),
            is_write: i.is_multiple_of(5),
        })
        .collect();
    Box::new(ReplayTrace::new("shard-conflict", records))
}

fn config() -> SystemConfig {
    let mut cfg = SystemConfig::paper_default(MitigationConfig::mopac_d(500), instr_budget());
    cfg.geometry = DramGeometry {
        channels: 4,
        ..DramGeometry::tiny()
    };
    cfg.enable_checker = true;
    cfg.metrics = Some(SinkConfig::default());
    cfg.seed = 0x5AA2_D001;
    cfg
}

fn main() {
    let threads = resolve_shard_threads(0).expect("MOPAC_SHARD_THREADS");
    let tag =
        std::env::var("MOPAC_SHARD_TAG").unwrap_or_else(|_| format!("t{threads}"));
    let cfg = config();
    let row_bytes = u64::from(cfg.geometry.row_bytes);
    let traces = (0..8).map(|c| conflict_trace(c, row_bytes)).collect();
    let mut sys = System::new(cfg, traces).expect("build system");
    if std::env::var("MOPAC_SHARD_BATCH").is_ok_and(|v| v == "0") {
        sys.debug_set_batching(false);
    }

    // Pause mid-run for a snapshot digest, then finish.
    let paused = sys.run_until_refs(4).expect("run to REF boundary");
    let snap_digest = if paused.is_none() {
        fnv1a64(&sys.snapshot())
    } else {
        eprintln!("warning: run finished before the snapshot boundary");
        0
    };
    let result = match paused {
        Some(done) => done,
        None => sys.run_to_completion().expect("finish run"),
    };
    let metrics = sys
        .metrics_snapshot()
        .expect("metrics were enabled");

    let mut table = Report::new(
        &format!("shard_det_{tag}"),
        "Shard determinism artifact: identical at every MOPAC_SHARD_THREADS",
        &["metric", "value"],
    );
    let mut put = |k: &str, v: String| table.row(&[k.to_string(), v]);
    put("snapshot_digest", format!("{snap_digest:#018x}"));
    put("cycles", result.cycles.to_string());
    for (i, c) in result.cores.iter().enumerate() {
        put(&format!("core{i}_finish"), c.finish_cycle.to_string());
        put(&format!("core{i}_ipc"), format!("{:.12}", c.ipc));
    }
    put("activates", result.dram.activates.to_string());
    put("reads", result.dram.reads.to_string());
    put("writes", result.dram.writes.to_string());
    put("refreshes", result.dram.refreshes.to_string());
    put("rfms", result.dram.rfms.to_string());
    put("alerts_mitigation", result.dram.alerts_mitigation.to_string());
    put("mitigations", result.mitigation.mitigations.to_string());
    put("counter_updates", result.mitigation.counter_updates.to_string());
    put("srq_insertions", result.mitigation.srq_insertions.to_string());
    put("violations", result.violations.to_string());
    put("avg_read_latency", format!("{:.12}", result.avg_read_latency));
    put("prefetch_issued", result.prefetch.issued.to_string());
    let csv = table.write_csv().expect("write report csv");

    let jsonl = data_dir().join(format!("shard_det_{tag}_metrics.jsonl"));
    mopac_types::persist::atomic_write_str(&jsonl, &metrics.to_jsonl())
        .expect("write metrics jsonl");
    eprintln!(
        "shard_determinism [{tag}] threads={threads}: {} cycles, digest {snap_digest:#018x}\n  {}\n  {}",
        result.cycles,
        csv.display(),
        jsonl.display(),
    );
}
