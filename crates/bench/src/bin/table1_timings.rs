//! Table 1: DRAM timings for base DDR5-6000AN vs PRAC, as the simulator
//! enforces them (nanoseconds and DRAM-clock cycles).

use mopac_bench::Report;
use mopac_dram::timing::TimingSet;
use mopac_types::jedec::TimingNs;

fn main() {
    let base_ns = TimingNs::ddr5_base();
    let prac_ns = TimingNs::ddr5_prac();
    let base = TimingSet::ddr5_base();
    let prac = TimingSet::ddr5_prac();
    let mut r = Report::new(
        "table1",
        "DRAM timings (paper Table 1) and enforced cycle counts",
        &["param", "base ns", "PRAC ns", "base cyc", "PRAC cyc"],
    );
    let rows: [(&str, f64, f64, u64, u64); 4] = [
        ("tRCD", base_ns.t_rcd, prac_ns.t_rcd, base.t_rcd, prac.t_rcd),
        ("tRP", base_ns.t_rp, prac_ns.t_rp, base.t_rp, prac.t_rp),
        ("tRAS", base_ns.t_ras, prac_ns.t_ras, base.t_ras, prac.t_ras),
        ("tRC", base_ns.t_rc, prac_ns.t_rc, base.t_rc, prac.t_rc),
    ];
    for (name, bn, pn, bc, pc) in rows {
        r.row(&[
            name.to_string(),
            format!("{bn}"),
            format!("{pn}"),
            bc.to_string(),
            pc.to_string(),
        ]);
    }
    r.row(&[
        "tREFI".into(),
        format!("{}", base_ns.t_refi),
        format!("{}", prac_ns.t_refi),
        base.t_refi.to_string(),
        prac.t_refi.to_string(),
    ]);
    r.row(&[
        "tRFC".into(),
        format!("{}", base_ns.t_rfc),
        format!("{}", prac_ns.t_rfc),
        base.t_rfc.to_string(),
        prac.t_rfc.to_string(),
    ]);
    r.emit();
}
