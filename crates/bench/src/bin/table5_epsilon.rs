//! Table 5: failure budget F (Equation 3) and per-side escape budget
//! epsilon (Equation 6) for varying thresholds.

use mopac_analysis::mttf::FailureBudget;
use mopac_bench::{sci, Report};

fn main() {
    let mut r = Report::new(
        "table5",
        "F and epsilon vs threshold (paper Table 5; note the paper's \
         eps at T=1000 is a typo — sqrt(1.44e-16) = 1.20e-8)",
        &["T_RH", "F (paper)", "F (ours)", "eps (paper)", "eps (ours)"],
    );
    let paper = [
        (250u64, "3.59e-17", "5.99e-9"),
        (500, "7.19e-17", "8.48e-9"),
        (1000, "1.44e-16", "1.12e-8"),
    ];
    for (t, f_p, e_p) in paper {
        let b = FailureBudget::paper_default(t);
        r.row(&[
            t.to_string(),
            f_p.to_string(),
            sci(b.round_budget()),
            e_p.to_string(),
            sci(b.per_side_epsilon()),
        ]);
    }
    r.emit();
}
