//! Table 15 (Appendix C): slowdowns of PRAC and MoPAC-D under proactive
//! row-closure policies (open-page, close-page, tON = 100/200 ns).
//!
//! Slowdowns are measured against the *same-policy* baseline, as in the
//! paper; the close-page baseline itself runs ~1.8% behind open-page.

use mopac::config::MitigationConfig;
use mopac_bench::{instr_budget, pct, workload_filter, Report};
use mopac_memctrl::controller::PagePolicy;
use mopac_sim::experiment::run_workload_with;
use mopac_sim::system::SystemConfig;
use mopac_workloads::spec::all_names;

fn policy_baselines(
    policy: PagePolicy,
    names: &[String],
    instrs: u64,
) -> Vec<mopac_sim::RunResult> {
    names
        .iter()
        .map(|name| {
            let mut base_cfg =
                SystemConfig::paper_default(MitigationConfig::baseline(), instrs);
            base_cfg.mc.page_policy = policy;
            run_workload_with(name, base_cfg).expect("baseline run")
        })
        .collect()
}

fn mean_slowdown(
    mit: MitigationConfig,
    policy: PagePolicy,
    names: &[String],
    bases: &[mopac_sim::RunResult],
    instrs: u64,
) -> f64 {
    let mut total = 0.0;
    for (name, base) in names.iter().zip(bases) {
        let mut cfg = SystemConfig::paper_default(mit, instrs);
        cfg.mc.page_policy = policy;
        let run = run_workload_with(name, cfg).expect("workload run");
        total += run.slowdown_vs(base);
    }
    total / names.len() as f64
}

fn main() {
    let instrs = instr_budget();
    let names: Vec<String> = workload_filter()
        .unwrap_or_else(|| all_names().iter().map(|s| (*s).to_string()).collect());
    let mut r = Report::new(
        "table15",
        "Row-closure policies (paper Table 15: PRAC 10/7.1/7.5/8.2%; \
         MoPAC-D@500 0.8/1.3/1.0/0.9%)",
        &["policy", "PRAC", "MoPAC-D@1000", "MoPAC-D@500", "MoPAC-D@250", "base IPC"],
    );
    let policies = [
        ("open-page", PagePolicy::Open),
        ("close-page", PagePolicy::ClosedIdle),
        ("tON=100ns", PagePolicy::TimeoutNs(100.0)),
        ("tON=200ns", PagePolicy::TimeoutNs(200.0)),
    ];
    for (label, policy) in policies {
        let bases = policy_baselines(policy, &names, instrs);
        let base_ipc = bases
            .iter()
            .map(|b| b.cores.iter().map(|c| c.ipc).sum::<f64>())
            .sum::<f64>()
            / names.len() as f64;
        let prac = mean_slowdown(MitigationConfig::prac(500), policy, &names, &bases, instrs);
        let d1000 =
            mean_slowdown(MitigationConfig::mopac_d(1000), policy, &names, &bases, instrs);
        let d500 = mean_slowdown(MitigationConfig::mopac_d(500), policy, &names, &bases, instrs);
        let d250 = mean_slowdown(MitigationConfig::mopac_d(250), policy, &names, &bases, instrs);
        r.row(&[
            label.to_string(),
            pct(prac),
            pct(d1000),
            pct(d500),
            pct(d250),
            format!("{base_ipc:.2}"),
        ]);
        eprintln!("done policy {label}");
    }
    r.emit();
}
