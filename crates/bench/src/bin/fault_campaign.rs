//! Fault-injection campaign: sweep a matrix of injected fault kinds
//! against the mitigations under test and report graceful degradation.
//!
//! For every (mitigation × fault) cell the campaign runs a short
//! workload with the fault schedule active, inside the panic-isolated
//! [`IsolatedRunner`] (wall-clock timeout, livelock watchdog, one retry
//! with a bumped seed). Results — including typed failures — append to
//! `EXPERIMENTS-data/fault_campaign.csv` *incrementally*, one flushed
//! row per finished cell, so a crash mid-campaign loses nothing that
//! already ran.
//!
//! Knobs:
//! - `MOPAC_FAULT_INSTRS`: per-core instructions per cell (default 40k).
//! - `MOPAC_FAULT_TIMEOUT_SECS`: per-attempt wall-clock budget (default 300).
//! - `MOPAC_INJECT_PANIC=<mitigation>/<fault>`: deliberately panic in
//!   that cell, demonstrating that isolation keeps the rest of the
//!   matrix alive and persisted.

use mopac::config::MitigationConfig;
use mopac_bench::{IncrementalCsv, Report};
use mopac_sim::experiment::build_traces;
use mopac_sim::fault::{FaultKind, FaultPlan};
use mopac_sim::runner::{IsolatedRunner, RunStatus};
use mopac_sim::system::{RunResult, System, SystemConfig};
use mopac_types::geometry::DramGeometry;
use std::time::Duration;

/// The fault schedules under test (≥5 kinds).
fn fault_matrix() -> Vec<(&'static str, FaultPlan)> {
    vec![
        (
            "alert-storm",
            FaultPlan::new(0xFA01).with(
                2_000,
                FaultKind::AlertStorm {
                    subchannel: 0,
                    period: 1_100,
                    count: 20,
                },
            ),
        ),
        (
            // Pair the drop with spurious ALERTs so RFMs are actually
            // issued (and swallowed): the MC must recover via re-issue.
            "drop-rfm",
            FaultPlan::new(0xFA02)
                .with(1_000, FaultKind::DropRfm { count: 3 })
                .with(
                    2_000,
                    FaultKind::AlertStorm {
                        subchannel: 0,
                        period: 2_000,
                        count: 6,
                    },
                ),
        ),
        (
            "delay-rfm",
            FaultPlan::new(0xFA03)
                .with(0, FaultKind::DelayRfm { extra_cycles: 200 })
                .with(
                    2_000,
                    FaultKind::AlertStorm {
                        subchannel: 0,
                        period: 2_000,
                        count: 6,
                    },
                ),
        ),
        ("counter-bitflip", {
            let mut plan = FaultPlan::new(0xFA04);
            for i in 0..8u64 {
                plan = plan.with(
                    1_000 + i * 1_000,
                    FaultKind::CounterBitFlip {
                        subchannel: 0,
                        bank: (i % 4) as u32,
                        bit: 9,
                    },
                );
            }
            plan
        }),
        (
            "stuck-bank",
            FaultPlan::new(0xFA05).with(
                3_000,
                FaultKind::StuckBank {
                    subchannel: 0,
                    bank: 1,
                    duration: 10_000,
                },
            ),
        ),
        (
            "trace-corruption",
            FaultPlan::new(0xFA06).with(0, FaultKind::TraceCorruption { rate: 0.01 }),
        ),
    ]
}

/// The mitigations under test (≥3).
fn mitigations() -> Vec<(&'static str, MitigationConfig)> {
    vec![
        ("prac", MitigationConfig::prac(500)),
        ("mopac-c", MitigationConfig::mopac_c(500)),
        ("mopac-d", MitigationConfig::mopac_d(500)),
    ]
}

fn cell_instrs() -> u64 {
    std::env::var("MOPAC_FAULT_INSTRS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(40_000)
}

fn cell_timeout() -> Duration {
    let secs = std::env::var("MOPAC_FAULT_TIMEOUT_SECS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(300);
    Duration::from_secs(secs)
}

/// One isolated cell run: workload `xz` on the tiny geometry with the
/// checker on and the fault plan active. `attempt` bumps the seed so a
/// retried cell does not replay the identical failure.
fn run_cell(mit: MitigationConfig, plan: &FaultPlan, attempt: u32) -> mopac_types::MopacResult<RunResult> {
    let mut cfg = SystemConfig::paper_default(mit, cell_instrs());
    cfg.geometry = DramGeometry::tiny();
    cfg.enable_checker = true;
    cfg.seed = 0x5151 + u64::from(attempt);
    cfg.livelock_window = 2_000_000;
    cfg.fault_plan = Some(plan.clone());
    let traces = build_traces("xz", &cfg)?;
    System::new(cfg, traces)?.run()
}

fn main() {
    let headers = [
        "mitigation",
        "fault",
        "status",
        "attempts",
        "violations",
        "faults_applied",
        "trace_corruptions",
        "alerts",
        "rfms",
        "cycles",
        "detail",
    ];
    let mut csv = IncrementalCsv::create("fault_campaign", &headers)
        .expect("create fault_campaign.csv");
    let mut table = Report::new(
        "fault_campaign_summary",
        "Fault-injection campaign: graceful degradation per (mitigation x fault)",
        &headers,
    );
    let runner = IsolatedRunner::with_timeout(cell_timeout());
    let inject_panic = std::env::var("MOPAC_INJECT_PANIC").ok();
    let mut escapes = 0u64;
    let mut not_done = 0u64;

    for (mname, mit) in mitigations() {
        for (fname, plan) in fault_matrix() {
            let cell = format!("{mname}/{fname}");
            let plan_for_cell = plan.clone();
            let boom = inject_panic.as_deref() == Some(cell.as_str());
            let report = runner.run(&cell, move |attempt| {
                assert!(
                    !boom,
                    "MOPAC_INJECT_PANIC: simulated crash in cell (attempt {attempt})"
                );
                run_cell(mit, &plan_for_cell, attempt)
            });
            let status = match report.status {
                RunStatus::Done => "done",
                RunStatus::Failed => "failed",
                RunStatus::Panicked => "panicked",
                RunStatus::TimedOut => "timed-out",
            };
            let (violations, faults, corruptions, alerts, rfms, cycles) = report
                .value
                .as_ref()
                .map_or((0, 0, 0, 0, 0, 0), |r| {
                    (
                        r.violations,
                        r.faults_applied,
                        r.trace_corruptions,
                        r.dram.alerts(),
                        r.dram.rfms,
                        r.cycles,
                    )
                });
            // Oracle escapes become a structured note, never an abort.
            let detail = report.value.as_ref().map_or_else(
                || {
                    report
                        .error
                        .as_ref()
                        .map_or(String::new(), std::string::ToString::to_string)
                },
                |r| r.check_oracle().err().map_or(String::new(), |e| e.to_string()),
            );
            if report.status != RunStatus::Done {
                not_done += 1;
            }
            escapes += violations;
            let row: Vec<String> = vec![
                mname.to_string(),
                fname.to_string(),
                status.to_string(),
                report.attempts.to_string(),
                violations.to_string(),
                faults.to_string(),
                corruptions.to_string(),
                alerts.to_string(),
                rfms.to_string(),
                cycles.to_string(),
                detail,
            ];
            csv.append(&row).expect("append campaign row");
            table.row(&row);
            eprintln!("  [{status}] {cell}");
        }
    }
    println!("{}", table.to_table());
    println!(
        "campaign complete: {} cells, {} not-done, {} oracle escapes; rows persisted to {}",
        mitigations().len() * fault_matrix().len(),
        not_done,
        escapes,
        csv.path().display()
    );
}
