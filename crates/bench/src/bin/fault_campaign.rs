//! Fault-injection campaign: sweep a matrix of injected fault kinds
//! against the mitigations under test and report graceful degradation.
//!
//! The cell matrix and row schema live in [`mopac_sim::campaign`]; this
//! binary wires them to the deterministic parallel driver
//! ([`mopac_sim::ParallelCampaign`]): cells fan out across worker
//! threads, each inside the panic-isolated `IsolatedRunner` (wall-clock
//! timeout, livelock watchdog, one retry with a bumped seed), and rows
//! commit to `EXPERIMENTS-data/fault_campaign.csv` *incrementally in
//! submission order* — one flushed row per finished cell — so a crash
//! mid-campaign loses nothing that already ran, and the CSV bytes are
//! identical at any thread count.
//!
//! Knobs:
//! - `MOPAC_FAULT_INSTRS`: per-core instructions per cell (default 40k).
//! - `MOPAC_FAULT_TIMEOUT_SECS`: per-attempt wall-clock budget (default 300).
//! - `MOPAC_THREADS`: worker threads (default: available parallelism).
//! - `MOPAC_INJECT_PANIC=<mitigation>/<fault>`: deliberately panic in
//!   that cell, demonstrating that isolation keeps the rest of the
//!   matrix alive and persisted.
//! - `MOPAC_CKPT_DIR=<dir>`: checkpoint the campaign there
//!   ([`CheckpointedFaultCampaign`]). Re-running with the same spec
//!   resumes — completed cells replay from the checkpoint instead of
//!   re-executing, and the final CSV is byte-identical to an
//!   uninterrupted run (kill-and-resume is gated in `ci.sh`).

use mopac_bench::{IncrementalCsv, Report};
use mopac_sim::campaign::{
    fault_cells, run_fault_campaign, CheckpointedFaultCampaign, FaultCampaignSpec,
    FAULT_CAMPAIGN_HEADERS,
};
use mopac_sim::runner::RunStatus;
use std::time::Duration;

fn spec_from_env() -> FaultCampaignSpec {
    let mut spec = FaultCampaignSpec::default();
    if let Some(instrs) = std::env::var("MOPAC_FAULT_INSTRS")
        .ok()
        .and_then(|v| v.parse().ok())
    {
        spec.instrs = instrs;
    }
    if let Some(secs) = std::env::var("MOPAC_FAULT_TIMEOUT_SECS")
        .ok()
        .and_then(|v| v.parse().ok())
    {
        spec.timeout = Duration::from_secs(secs);
    }
    spec.inject_panic = std::env::var("MOPAC_INJECT_PANIC").ok();
    spec
}

fn main() {
    let mut csv = IncrementalCsv::create("fault_campaign", &FAULT_CAMPAIGN_HEADERS)
        .expect("create fault_campaign.csv");
    let mut table = Report::new(
        "fault_campaign_summary",
        "Fault-injection campaign: graceful degradation per (mitigation x fault)",
        &FAULT_CAMPAIGN_HEADERS,
    );
    let spec = spec_from_env();
    let mut escapes = 0u64;
    let mut not_done = 0u64;
    let sink = |outcome: mopac_sim::FaultCellOutcome| {
        if outcome.status != RunStatus::Done {
            not_done += 1;
        }
        escapes += outcome.violations;
        csv.append(&outcome.row).expect("append campaign row");
        table.row(&outcome.row);
        eprintln!("  [{}] {}", outcome.row[2], outcome.label);
    };
    if let Ok(dir) = std::env::var("MOPAC_CKPT_DIR") {
        let cells = fault_cells();
        let ckpt = CheckpointedFaultCampaign::new(spec, dir);
        let summary = ckpt.run(&cells, sink).expect("checkpointed campaign");
        eprintln!(
            "checkpoint: {} cell(s) resumed, {} executed",
            summary.resumed, summary.executed
        );
    } else {
        run_fault_campaign(&spec, sink);
    }
    println!("{}", table.to_table());
    println!(
        "campaign complete: {} cells, {} not-done, {} oracle escapes; rows persisted to {}",
        fault_cells().len(),
        not_done,
        escapes,
        csv.path().display()
    );
}
