//! Runs the full experiment suite — every table and figure — by
//! invoking the sibling experiment binaries in order. CSVs land in
//! `EXPERIMENTS-data/`.
//!
//! Budget knobs: `MOPAC_INSTRS` (per-core instructions, default 250k),
//! `MOPAC_ATTACK_CYCLES`, `MOPAC_WORKLOADS` (comma list to restrict the
//! sweeps).

use std::process::Command;
use std::time::Instant;

/// Experiment binaries in presentation order: analytical first
/// (seconds), then simulations (minutes).
const EXPERIMENTS: &[&str] = &[
    "table1_timings",
    "table2_moat_ath",
    "fig4_conflict_latency",
    "table5_epsilon",
    "table6_pe1",
    "table7_mopac_c_params",
    "table8_mopac_d_params",
    "table11_nup_params",
    "table13_related",
    "table14_rowpress_params",
    "alpha_monte_carlo",
    "table9_attack_mopac_c",
    "table10_attack_mopac_d",
    "table4_workloads",
    "fig2_prac_slowdown",
    "fig9_mopac_c",
    "fig11_mopac_d",
    "fig12_drain_sensitivity",
    "fig13_srq_sensitivity",
    "fig17_nup",
    "table12_srq_insertions",
    "fig18_rowpress",
    "fig19_chips",
    "table15_closure",
    "fig1d_headline",
];

fn main() {
    let me = std::env::current_exe().expect("own path");
    let dir = me.parent().expect("bin dir").to_path_buf();
    let started = Instant::now();
    let mut failures = Vec::new();
    for name in EXPERIMENTS {
        let exe = dir.join(name);
        if !exe.exists() {
            eprintln!("!! {name}: binary not found at {}", exe.display());
            failures.push(*name);
            continue;
        }
        println!("\n########## {name} ##########");
        let t0 = Instant::now();
        match Command::new(&exe).status() {
            Ok(st) if st.success() => {
                println!("({name} finished in {:.1}s)", t0.elapsed().as_secs_f32());
            }
            Ok(st) => {
                eprintln!("!! {name} exited with {st}");
                failures.push(*name);
            }
            Err(e) => {
                eprintln!("!! {name} failed to launch: {e}");
                failures.push(*name);
            }
        }
    }
    println!(
        "\n== run_all complete in {:.1} min; {} experiments, {} failures ==",
        started.elapsed().as_secs_f32() / 60.0,
        EXPERIMENTS.len(),
        failures.len()
    );
    if !failures.is_empty() {
        eprintln!("failed: {failures:?}");
        std::process::exit(1);
    }
}
