//! Runs the full experiment suite — every table and figure — by
//! invoking the sibling experiment binaries. CSVs land in
//! `EXPERIMENTS-data/`.
//!
//! The binaries fan out across worker threads via the deterministic
//! parallel campaign driver ([`mopac_sim::ParallelCampaign`]): each
//! binary's output is captured and replayed on stdout in presentation
//! order, so the console log reads exactly like the old sequential
//! runner while the wall-clock time is bounded by the slowest
//! experiment, not the sum.
//!
//! Budget knobs: `MOPAC_INSTRS` (per-core instructions, default 250k),
//! `MOPAC_ATTACK_CYCLES`, `MOPAC_WORKLOADS` (comma list to restrict the
//! sweeps), `MOPAC_THREADS` (worker threads, default: available
//! parallelism), `MOPAC_RUN_ALL_TIMEOUT_SECS` (per-binary budget,
//! default 3600).

use mopac_sim::campaign::ParallelCampaign;
use mopac_sim::runner::{IsolatedRunner, RunReport};
use mopac_types::error::MopacError;
use std::process::Command;
use std::time::{Duration, Instant};

/// Experiment binaries in presentation order: analytical first
/// (seconds), then simulations (minutes).
const EXPERIMENTS: &[&str] = &[
    "table1_timings",
    "table2_moat_ath",
    "fig4_conflict_latency",
    "table5_epsilon",
    "table6_pe1",
    "table7_mopac_c_params",
    "table8_mopac_d_params",
    "table11_nup_params",
    "table13_related",
    "table14_rowpress_params",
    "alpha_monte_carlo",
    "table9_attack_mopac_c",
    "table10_attack_mopac_d",
    "table4_workloads",
    "fig2_prac_slowdown",
    "fig9_mopac_c",
    "fig11_mopac_d",
    "fig12_drain_sensitivity",
    "fig13_srq_sensitivity",
    "fig17_nup",
    "table12_srq_insertions",
    "fig18_rowpress",
    "fig19_chips",
    "table15_closure",
    "fig1d_headline",
    "attack_suite",
    "bench_mitigations",
];

/// Captured run of one experiment binary.
struct ExperimentRun {
    success: bool,
    stdout: Vec<u8>,
    stderr: Vec<u8>,
    secs: f32,
}

fn timeout() -> Duration {
    let secs = std::env::var("MOPAC_RUN_ALL_TIMEOUT_SECS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3600);
    Duration::from_secs(secs)
}

fn main() {
    let me = std::env::current_exe().expect("own path");
    let dir = me.parent().expect("bin dir").to_path_buf();
    let started = Instant::now();
    let mut failures = Vec::new();
    let campaign = ParallelCampaign::new(0)
        .with_runner(IsolatedRunner::with_timeout(timeout()));
    println!(
        "== run_all: {} experiments across {} worker threads ==",
        EXPERIMENTS.len(),
        campaign.threads()
    );
    campaign.run(
        EXPERIMENTS,
        |name| (*name).to_string(),
        move |name, _seed, _attempt| {
            let exe = dir.join(name);
            if !exe.exists() {
                return Err(MopacError::config(format!(
                    "binary not found at {}",
                    exe.display()
                )));
            }
            let t0 = Instant::now();
            let out = Command::new(&exe).output().map_err(|e| {
                MopacError::internal(format!("{name} failed to launch: {e}"))
            })?;
            Ok(ExperimentRun {
                success: out.status.success(),
                stdout: out.stdout,
                stderr: out.stderr,
                secs: t0.elapsed().as_secs_f32(),
            })
        },
        |idx, report: RunReport<ExperimentRun>| {
            let name = EXPERIMENTS[idx];
            println!("\n########## {name} ##########");
            match (report.value, report.error) {
                (Some(run), _) => {
                    print!("{}", String::from_utf8_lossy(&run.stdout));
                    eprint!("{}", String::from_utf8_lossy(&run.stderr));
                    if run.success {
                        println!("({name} finished in {:.1}s)", run.secs);
                    } else {
                        eprintln!("!! {name} exited with failure");
                        failures.push(name);
                    }
                }
                (None, err) => {
                    eprintln!(
                        "!! {name}: {}",
                        err.map_or_else(|| "no outcome".to_string(), |e| e.to_string())
                    );
                    failures.push(name);
                }
            }
        },
    );
    println!(
        "\n== run_all complete in {:.1} min; {} experiments, {} failures ==",
        started.elapsed().as_secs_f32() / 60.0,
        EXPERIMENTS.len(),
        failures.len()
    );
    if !failures.is_empty() {
        eprintln!("failed: {failures:?}");
        std::process::exit(1);
    }
}
