//! Table 9: performance attacks on MoPAC-C — analytic model plus a
//! simulated multi-bank attack.

use mopac::config::MitigationConfig;
use mopac_analysis::params::mopac_c_params;
use mopac_analysis::perf_attack::{mitigation_attack_slowdown, PAPER_ALPHA};
use mopac_bench::{attack_cycle_budget, pct, Report};
use mopac_sim::attack::{run_attack, AttackConfig};
use mopac_types::geometry::DramGeometry;
use mopac_workloads::attack::MultiBankRoundRobin;

fn main() {
    let mut r = Report::new(
        "table9",
        "Performance attack on MoPAC-C (paper Table 9: 14.0% / 6.7% / 3.2%)",
        &[
            "T_RH",
            "attack ATH*",
            "model (alpha=0.55)",
            "paper",
            "simulated loss",
            "sim ACTs/ALERT",
            "violations",
        ],
    );
    let paper = [(250u64, "14.0%"), (500, "6.7%"), (1000, "3.2%")];
    let cycles = attack_cycle_budget();
    // Reference throughput: the same pattern with no mitigation.
    let mut base_pat = MultiBankRoundRobin::new(DramGeometry::ddr5_32gb(), 99);
    let base = run_attack(
        &AttackConfig::new(MitigationConfig::baseline(), cycles),
        &mut base_pat,
    )
    .expect("baseline attack run");
    for (t, want) in paper {
        let params = mopac_c_params(t);
        let model = mitigation_attack_slowdown(&params, PAPER_ALPHA);
        let mut pat = MultiBankRoundRobin::new(DramGeometry::ddr5_32gb(), 99);
        let res = run_attack(
            &AttackConfig::new(MitigationConfig::mopac_c(t), cycles),
            &mut pat,
        )
        .expect("attack run");
        r.row(&[
            t.to_string(),
            params.attack_ath_star().to_string(),
            pct(model),
            want.to_string(),
            pct(res.throughput_loss_vs(&base)),
            res.acts_per_alert()
                .map_or("-".into(), |v| format!("{v:.0}")),
            res.violations.to_string(),
        ]);
    }
    r.emit();
}
