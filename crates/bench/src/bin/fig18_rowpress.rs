//! Figure 18 (Appendix A): MoPAC-C and MoPAC-D with and without
//! integrated Row-Press protection at T_RH = 1000 / 500.

use mopac::config::MitigationConfig;
use mopac_bench::slowdown_matrix;

fn main() {
    let mut configs = Vec::new();
    for t in [1000u64, 500] {
        configs.push((format!("C@{t}"), MitigationConfig::mopac_c(t)));
        configs.push((
            format!("C+RP@{t}"),
            MitigationConfig::mopac_c(t).with_row_press(),
        ));
        configs.push((format!("D@{t}"), MitigationConfig::mopac_d(t)));
        configs.push((
            format!("D+RP@{t}"),
            MitigationConfig::mopac_d(t).with_row_press(),
        ));
    }
    slowdown_matrix(
        "fig18",
        "Row-Press-hardened MoPAC (paper Fig 18; at T1000 C 0.9%, D 0.4%; \
         at T500 C 1.8%, D 6.8%)",
        &configs,
    )
    .expect("slowdown sweep")
    .emit();
}
