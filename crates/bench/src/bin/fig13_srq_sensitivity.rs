//! Figure 13: MoPAC-D slowdown vs SRQ size (8 / 16 / 32 entries) at
//! T_RH = 1000 / 500 / 250.

use mopac::config::MitigationConfig;
use mopac_bench::slowdown_matrix;

fn main() {
    let mut configs = Vec::new();
    for t in [1000u64, 500, 250] {
        for srq in [8usize, 16, 32] {
            configs.push((
                format!("T{t}/srq{srq}"),
                MitigationConfig::mopac_d(t).with_srq_capacity(srq),
            ));
        }
    }
    slowdown_matrix(
        "fig13",
        "MoPAC-D vs SRQ size (paper Fig 13; means T1000: 0.5/0.1/0.1%, \
         T500: 1.9/0.8/0.3%, T250: 9.0/3.5/2.7%)",
        &configs,
    )
    .expect("slowdown sweep")
    .emit();
}
