//! Table 6: the row failure probability P_e1 (binomial undercount tail,
//! Equation 2) at varying T_RH as C sweeps 20..=25.

use mopac_analysis::binomial::prob_fewer_than;
use mopac_analysis::moat::moat_ath;
use mopac_analysis::mttf::FailureBudget;
use mopac_bench::{sci, Report};

fn main() {
    let mut r = Report::new(
        "table6",
        "P_e1 = P(N <= C) for MoPAC-C (paper Table 6); 'x eps' is the \
         ratio to the threshold's budget",
        &[
            "C",
            "T=250 (p=1/4)",
            "x eps",
            "T=500 (p=1/8)",
            "x eps",
            "T=1000 (p=1/16)",
            "x eps",
        ],
    );
    let cols: Vec<(u64, f64, f64)> = [250u64, 500, 1000]
        .into_iter()
        .map(|t| {
            let ath = moat_ath(t);
            let p = match t {
                250 => 0.25,
                500 => 0.125,
                _ => 1.0 / 16.0,
            };
            let eps = FailureBudget::paper_default(t).per_side_epsilon();
            (ath, p, eps)
        })
        .collect();
    for c in 20u64..=25 {
        let mut cells = vec![c.to_string()];
        for &(ath, p, eps) in &cols {
            let pe1 = prob_fewer_than(ath, p, c + 1); // P(N <= C)
            cells.push(sci(pe1));
            cells.push(format!("{:.1}x", pe1 / eps));
        }
        r.row(&cells);
    }
    r.emit();
    println!(
        "paper bold rows (largest C below eps): 20 @ T=250, 22 @ T=500, 23 @ T=1000"
    );
}
