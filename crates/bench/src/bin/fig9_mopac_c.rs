//! Figure 9: per-workload slowdown of PRAC vs MoPAC-C at
//! T_RH = 1000 / 500 / 250 (paper means: PRAC 10%; MoPAC-C 0.7-0.8%,
//! 1.8%, 3.0%).

use mopac::config::MitigationConfig;
use mopac_bench::slowdown_matrix;

fn main() {
    let configs = vec![
        ("PRAC".to_string(), MitigationConfig::prac(500)),
        ("MoPAC-C@1000".to_string(), MitigationConfig::mopac_c(1000)),
        ("MoPAC-C@500".to_string(), MitigationConfig::mopac_c(500)),
        ("MoPAC-C@250".to_string(), MitigationConfig::mopac_c(250)),
    ];
    slowdown_matrix(
        "fig9",
        "PRAC vs MoPAC-C slowdowns (paper Fig 9; means 10% / 0.8% / 1.8% / 3.0%)",
        &configs,
    )
    .expect("slowdown sweep")
    .emit();
}
