//! Post-mortem ALERT replay: re-materialize the machine state shortly
//! before a chosen trace-ring ALERT and re-run it deterministically.
//!
//! Phase 1 (record): drive a double-sided hammer against the chosen
//! engine with metrics enabled, capturing a full [`AttackRun`] snapshot
//! every `MOPAC_REPLAY_INTERVAL` cycles (default 10k).
//!
//! Phase 2 (replay): pick an ALERT from the recorded trace ring
//! (`MOPAC_REPLAY_ALERT` = index into the ring's ALERT events, default
//! the last one), restore the latest snapshot at-or-before its cycle
//! into a *freshly constructed* run, and execute just past the alert.
//! Because snapshots capture the controller, device, engine, RNG, sink,
//! and attack-pattern cursor, the replay reproduces the ALERT at the
//! exact cycle with the exact cause — the verdict is checked, and the
//! replay window's protocol events go to
//! `EXPERIMENTS-data/alert_replay_trace.csv` for inspection.
//!
//! Knobs: `MOPAC_REPLAY_ENGINE` (default `prac`), `MOPAC_ATTACK_CYCLES`
//! (run length), `MOPAC_REPLAY_INTERVAL`, `MOPAC_REPLAY_ALERT`.

use mopac_bench::{attack_cycle_budget, data_dir};
use mopac_sim::{AttackConfig, AttackRun};
use mopac_types::geometry::{BankRef, DramGeometry};
use mopac_types::obs::{SinkConfig, TraceEvent, TraceEventKind, TraceRing};
use mopac_workloads::attack::DoubleSidedHammer;

fn env_or(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let engine = std::env::var("MOPAC_REPLAY_ENGINE").unwrap_or_else(|_| "prac".to_string());
    let registry = mopac::EngineRegistry::builtin();
    let spec = registry
        .specs()
        .iter()
        .find(|s| s.name == engine)
        .unwrap_or_else(|| panic!("unknown engine '{engine}'"));
    let interval = env_or("MOPAC_REPLAY_INTERVAL", 10_000).max(1);
    let cfg = AttackConfig {
        geometry: DramGeometry::tiny(),
        ..AttackConfig::new((spec.preset)(500), attack_cycle_budget())
    };

    // Phase 1: record, snapshotting at a fixed cadence.
    let mut pattern = DoubleSidedHammer::new(BankRef::new(0, 0), 100);
    let mut run = AttackRun::new(&cfg, &mut pattern);
    run.enable_metrics(SinkConfig::default());
    let mut snaps: Vec<(u64, Vec<u8>)> = vec![(0, run.snapshot())];
    while run.now() < run.end() {
        run.run_until(run.now() + interval).expect("attack run");
        snaps.push((run.now(), run.snapshot()));
    }
    let recorded = run
        .metrics_snapshot(SinkConfig::default())
        .expect("metrics snapshot");
    let alerts: Vec<TraceEvent> = recorded
        .events
        .iter()
        .filter(|e| e.kind == TraceEventKind::Alert)
        .copied()
        .collect();
    println!(
        "recorded {} cycles against {engine}: {} ALERT(s) in the trace ring, {} snapshot(s)",
        cfg.cycles,
        alerts.len(),
        snaps.len()
    );
    let Some(last) = alerts.last().copied() else {
        println!("no ALERT events to replay; done");
        return;
    };
    let pick = env_or("MOPAC_REPLAY_ALERT", (alerts.len() - 1) as u64) as usize;
    let alert = *alerts.get(pick).unwrap_or(&last);

    // Phase 2: restore the latest snapshot at-or-before the alert and
    // re-run just past it.
    let (snap_cycle, snap) = snaps
        .iter()
        .rev()
        .find(|(c, _)| *c <= alert.cycle)
        .expect("cycle-0 snapshot always qualifies");
    println!(
        "replaying ALERT @ cycle {} (cause {}) from snapshot @ cycle {snap_cycle} ({} bytes)",
        alert.cycle,
        alert.value,
        snap.len()
    );
    let mut pattern2 = DoubleSidedHammer::new(BankRef::new(0, 0), 100);
    let mut replay = AttackRun::new(&cfg, &mut pattern2);
    replay.enable_metrics(SinkConfig::default());
    replay.restore(snap).expect("restore snapshot");
    assert_eq!(replay.now(), *snap_cycle);
    replay.run_until(alert.cycle + 1).expect("replay run");
    let replayed = replay
        .metrics_snapshot(SinkConfig::default())
        .expect("replay metrics snapshot");
    let reproduced = replayed.events.iter().any(|e| {
        e.kind == TraceEventKind::Alert
            && e.cycle == alert.cycle
            && e.subchannel == alert.subchannel
            && e.value == alert.value
    });

    // Persist the replay window for inspection.
    let mut csv = String::from(TraceRing::CSV_HEADER);
    csv.push('\n');
    for e in replayed
        .events
        .iter()
        .filter(|e| e.cycle >= *snap_cycle && e.cycle <= alert.cycle)
    {
        csv.push_str(&e.to_csv_row());
        csv.push('\n');
    }
    let dir = data_dir();
    std::fs::create_dir_all(&dir).expect("create data dir");
    let path = dir.join("alert_replay_trace.csv");
    mopac_types::persist::atomic_write_str(&path, &csv).expect("write replay trace");
    println!("replay window written to {}", path.display());

    assert!(
        reproduced,
        "replay did NOT reproduce the ALERT at cycle {} — snapshot seam is broken",
        alert.cycle
    );
    println!(
        "OK: replay reproduced ALERT @ cycle {} bit-identically",
        alert.cycle
    );
}
