//! Table 8: MoPAC-D parameters (A', p, C, ATH*, drain-on-REF).

use mopac_analysis::params::mopac_d_params;
use mopac_bench::Report;

fn main() {
    let mut r = Report::new(
        "table8",
        "MoPAC-D parameters (paper Table 8; paper prints A'=942 at \
         T=1000 but ATH-TTH = 975-32 = 943)",
        &["T_RH", "ATH", "A'", "p", "C", "ATH*", "paper ATH*", "drain/REF"],
    );
    let paper = [(250u64, 60u64), (500, 152), (1000, 336)];
    for (t, want) in paper {
        let p = mopac_d_params(t);
        r.row(&[
            t.to_string(),
            p.ath.to_string(),
            p.a_effective.to_string(),
            format!("1/{}", p.update_prob_denominator),
            p.critical_updates.to_string(),
            p.ath_star.to_string(),
            want.to_string(),
            p.drain_on_ref.to_string(),
        ]);
    }
    r.emit();
}
