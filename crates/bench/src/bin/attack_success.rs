//! Attack-success sweep (ISSUE 10): the victim-data verdict per
//! engine, ECC mode, and per-row T_RH distribution.
//!
//! The security suite's oracle answers "did any counter breach T_RH?";
//! this bench answers the question the attacker cares about — "did any
//! read return corrupted data?" — by arming the flip plane and reading
//! the victims back after the hammer. Three cell populations:
//!
//! * `const500` — every cell exactly as strong as the oracle's T_RH:
//!   an oracle-clean engine is structurally flip-free here;
//! * `uniform20-120` — a weak-cell tail far below every engine's ATH,
//!   where mitigation cannot save the weakest cells (MOAT's sweep);
//! * `lognormal300` — the empirical per-cell threshold shape from
//!   profiling studies.
//!
//! Results print as a table and land in workspace-root
//! `BENCH_attack_success.json`, diff-checked by ci.sh like
//! `BENCH_mitigations.json`; the cycle budget is a fixed constant so
//! the committed file is reproducible everywhere. The sweep also
//! asserts the ECC monotonicity contract: at the same seed, SEC ECC
//! never observes *more* corrupted reads than no ECC.

use mopac::EngineRegistry;
use mopac_bench::Report;
use mopac_dram::flip::{EccMode, FlipPlaneConfig, FlipStats, TrhDistribution};
use mopac_sim::attack::{AttackConfig, AttackRun};
use mopac_types::geometry::{BankRef, DramGeometry};
use mopac_workloads::attack::DoubleSidedHammer;
use std::fmt::Write as _;

/// Fixed cycle budget: the committed JSON is diff-checked, so this
/// must be identical everywhere (not tied to `MOPAC_ATTACK_CYCLES`).
const ATTACK_SUCCESS_CYCLES: u64 = 400_000;

/// The swept cell populations.
const DISTRIBUTIONS: [(&str, TrhDistribution); 3] = [
    ("const500", TrhDistribution::Constant(500)),
    ("uniform20-120", TrhDistribution::Uniform { lo: 20, hi: 120 }),
    (
        "lognormal300",
        TrhDistribution::LogNormal {
            median: 300.0,
            sigma: 0.4,
        },
    ),
];

/// One hammer run with the flip plane armed; returns the flip verdict
/// and the oracle's violation count.
fn run(mitigation: mopac::config::MitigationConfig, flip: FlipPlaneConfig) -> (FlipStats, u64) {
    let cfg = AttackConfig {
        geometry: DramGeometry::tiny(),
        flip: Some(flip),
        ..AttackConfig::new(mitigation, ATTACK_SUCCESS_CYCLES)
    };
    let mut pattern = DoubleSidedHammer::new(BankRef::new(0, 0), 100);
    let mut run = AttackRun::new(&cfg, &mut pattern);
    run.run_until(ATTACK_SUCCESS_CYCLES).expect("attack run");
    run.verify_readback();
    let r = run.result();
    (r.flip, r.violations)
}

fn json_stats(s: &FlipStats) -> String {
    format!(
        "{{\"bit_flips\": {}, \"ecc_corrections\": {}, \"corrupted_reads\": {}, \
         \"attack_success\": {}}}",
        s.bit_flips,
        s.ecc_corrections,
        s.corrupted_reads,
        s.attack_success()
    )
}

fn main() {
    let registry = EngineRegistry::builtin();
    let engines: Vec<_> = registry.specs().iter().filter(|s| s.tracks()).collect();
    let mut r = Report::new(
        "attack_success",
        "Victim-data corruption per engine, T_RH distribution, and ECC mode",
        &[
            "engine",
            "distribution",
            "flips",
            "corrupted (no ECC)",
            "corrupted (SEC)",
            "verdict",
        ],
    );

    let mut json = String::from("{\n");
    for (ei, spec) in engines.iter().enumerate() {
        let mitigation = (spec.preset)(500);
        let mut dist_entries = Vec::new();
        for (dname, dist) in DISTRIBUTIONS {
            let base = FlipPlaneConfig::new(dist).with_flip_probability(0.25);
            let (raw, raw_viol) = run(mitigation, base);
            let (ecc, ecc_viol) = run(mitigation, base.with_ecc(EccMode::Sec));
            // The oracle never consults the plane: both runs must agree
            // with it and with each other.
            assert_eq!(raw_viol, ecc_viol, "{}: oracle depends on ECC mode", spec.name);
            // Structural contract (OR-only flip sets, ECC-independent
            // draws): SEC can only ever hide corruption, never add it.
            assert!(
                ecc.corrupted_reads <= raw.corrupted_reads,
                "{}/{dname}: ECC-on observed {} corrupted reads vs {} ECC-off",
                spec.name,
                ecc.corrupted_reads,
                raw.corrupted_reads
            );
            let verdict = match (raw.attack_success(), ecc.attack_success()) {
                (false, _) => "clean",
                (true, true) => "corrupted",
                (true, false) => "ecc-saved",
            };
            r.row(&[
                spec.name.to_string(),
                dname.to_string(),
                raw.bit_flips.to_string(),
                raw.corrupted_reads.to_string(),
                ecc.corrupted_reads.to_string(),
                verdict.to_string(),
            ]);
            dist_entries.push(format!(
                "\"{dname}\": {{\"ecc_off\": {}, \"ecc_on\": {}, \"violations\": {raw_viol}}}",
                json_stats(&raw),
                json_stats(&ecc)
            ));
        }
        let _ = write!(json, "  \"{}\": {{{}}}", spec.name, dist_entries.join(", "));
        json.push_str(if ei + 1 < engines.len() { ",\n" } else { "\n" });
        eprintln!("  done {}", spec.name);
    }
    json.push_str("}\n");
    r.emit();

    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .map_or_else(
            || std::path::PathBuf::from("BENCH_attack_success.json"),
            |root| root.join("BENCH_attack_success.json"),
        );
    mopac_types::persist::atomic_write_str(&path, &json).expect("write BENCH_attack_success.json");
    println!("wrote {}", path.display());
}
