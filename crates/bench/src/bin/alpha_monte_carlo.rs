//! Section 7.2: Monte-Carlo estimate of alpha — the fraction of ATH*
//! activations after which the fastest of 32 banks triggers ABO.
//!
//! The paper reports alpha ~ 0.55; our iid negative-binomial model of
//! the same process yields ~0.64 (the paper does not specify its MC's
//! reset semantics — see EXPERIMENTS.md). Both are reported.

use mopac_analysis::params::{mopac_c_params, mopac_d_params};
use mopac_analysis::perf_attack::monte_carlo_alpha;
use mopac_bench::Report;

fn main() {
    let mut r = Report::new(
        "alpha",
        "Monte-Carlo alpha (paper Section 7.2: ~0.55 for 32 banks)",
        &["design", "T_RH", "banks", "alpha"],
    );
    for t in [250u64, 500, 1000] {
        for (name, p) in [("MoPAC-C", mopac_c_params(t)), ("MoPAC-D", mopac_d_params(t))] {
            for banks in [1u32, 8, 32, 64] {
                let alpha = monte_carlo_alpha(
                    banks,
                    p.critical_updates + 1,
                    p.p(),
                    20_000,
                    0xA1FA ^ t,
                );
                r.row(&[
                    name.to_string(),
                    t.to_string(),
                    banks.to_string(),
                    format!("{alpha:.3}"),
                ]);
            }
        }
    }
    r.emit();
}
