//! Kernel throughput: simulated cycles per wall-clock second for the
//! lockstep and event-driven kernels, on the three workload shapes that
//! bracket the design space.
//!
//! - `idle_heavy`: a single low-MPKI core whose huge inter-request gaps
//!   leave the machine idle most of the time. This is the event
//!   kernel's best case — it should win by well over 5x.
//! - `saturated_attack`: back-to-back same-bank row conflicts keep the
//!   controller busy nearly every cycle. The incremental scheduler
//!   index earns its keep here: busy cycles between commands are
//!   provable no-ops served from the cached wake instead of full
//!   rescans.
//! - `mixed_phase`: alternating idle and attack bursts, exercising the
//!   cache-invalidate/recompute churn at every phase boundary.
//!
//! Results print as a table and land in workspace-root
//! `BENCH_kernel.json` for the CI trend line (ci.sh fails if
//! `saturated_attack/event` drops more than 10% below the committed
//! baseline).
//!
//! `MOPAC_METRICS=1` runs the same matrix with the observability sink
//! enabled and writes `BENCH_kernel_metrics.json` instead — ci.sh
//! gates that run against the committed metrics-off baseline, bounding
//! the sink's overhead.

use mopac::config::MitigationConfig;
use mopac_cpu::trace::{ReplayTrace, TraceRecord, TraceSource};
use mopac_sim::system::{KernelMode, System, SystemConfig};
use mopac_types::addr::PhysAddr;
use mopac_types::geometry::DramGeometry;
use mopac_types::obs::SinkConfig;
use std::fmt::Write as _;
use std::time::Instant;

fn metrics_enabled() -> bool {
    std::env::var("MOPAC_METRICS").is_ok_and(|v| v == "1")
}

fn config(instrs: u64, kernel: KernelMode) -> SystemConfig {
    let mut cfg = SystemConfig::paper_default(MitigationConfig::prac(500), instrs);
    cfg.geometry = DramGeometry::tiny();
    cfg.kernel = kernel;
    if metrics_enabled() {
        cfg.metrics = Some(SinkConfig::default());
    }
    cfg
}

/// 4-channel variant of `config`, with the shard thread count pinned
/// explicitly (ignoring `MOPAC_SHARD_THREADS`) so one bench process can
/// sweep thread counts.
fn mc4_config(instrs: u64, threads: usize) -> SystemConfig {
    let mut cfg = config(instrs, KernelMode::EventDriven);
    cfg.geometry = DramGeometry {
        channels: 4,
        ..DramGeometry::tiny()
    };
    cfg.shard_threads = threads;
    cfg
}

/// Row-conflict ping-pong with a dense line stride, so MOP stripes the
/// stream across all four channels and every channel's queues stay
/// busy.
fn mc4_saturated_trace(core: u64) -> Box<dyn TraceSource> {
    let geom = DramGeometry::tiny();
    let row_bytes = u64::from(geom.row_bytes);
    let records = (0..256u64)
        .map(|i| TraceRecord {
            gap: 0,
            addr: PhysAddr::new(((i + core) % 2) * row_bytes * 64 + (i + core * 13) * 64),
            is_write: false,
        })
        .collect();
    Box::new(ReplayTrace::new("mc4_saturated", records))
}

/// Median-of-[`RUNS`] wall clock for the 4-channel saturated run at a
/// given shard thread count; cycles are asserted identical across
/// thread counts by the caller.
fn run_mc4(instrs: u64, threads: usize) -> Sample {
    let traces = |n: u64| (0..n).map(mc4_saturated_trace).collect::<Vec<_>>();
    System::new(mc4_config(instrs / 4, threads), traces(8))
        .expect("system")
        .run()
        .expect("warm-up run");
    let mut cycles = 0;
    let mut times = Vec::with_capacity(RUNS);
    for _ in 0..RUNS {
        let sys = System::new(mc4_config(instrs, threads), traces(8)).expect("system");
        let t0 = Instant::now();
        let result = sys.run().expect("timed run");
        times.push(t0.elapsed().as_secs_f64());
        cycles = result.cycles;
    }
    Sample {
        workload: "mc4_saturated",
        kernel: match threads {
            1 => "event@t1",
            2 => "event@t2",
            4 => "event@t4",
            _ => "event@tn",
        },
        cycles,
        times: Times::from(times),
    }
}

/// One distant line every 4000 instructions: the core spends almost
/// all its time retiring from the ROB with the memory system idle.
fn idle_heavy_trace() -> Box<dyn TraceSource> {
    let records = (0..64u64)
        .map(|i| TraceRecord {
            gap: 4_000,
            addr: PhysAddr::new(i * 64 * 131), // distinct lines, spread
            is_write: false,
        })
        .collect();
    Box::new(ReplayTrace::new("idle_heavy", records))
}

/// Ping-pong between two rows of one bank with no gaps: every access
/// is a row conflict, the queues stay full and the bus stays busy.
fn saturated_trace() -> Box<dyn TraceSource> {
    let geom = DramGeometry::tiny();
    let row_bytes = u64::from(geom.row_bytes);
    let records = (0..64u64)
        .map(|i| TraceRecord {
            gap: 0,
            addr: PhysAddr::new((i % 2) * row_bytes * 64 + (i / 2) * 64),
            is_write: false,
        })
        .collect();
    Box::new(ReplayTrace::new("saturated_attack", records))
}

/// Bursts of 8 gapless same-bank conflicts alternating with bursts of
/// 8 widely spaced distant lines: the scheduler flips between saturated
/// and idle every few hundred cycles, so the wake cache is repeatedly
/// built, consumed and invalidated at the phase boundaries.
fn mixed_phase_trace() -> Box<dyn TraceSource> {
    let geom = DramGeometry::tiny();
    let row_bytes = u64::from(geom.row_bytes);
    let records = (0..64u64)
        .map(|i| {
            if (i / 8) % 2 == 0 {
                TraceRecord {
                    gap: 0,
                    addr: PhysAddr::new((i % 2) * row_bytes * 64 + (i / 2) * 64),
                    is_write: false,
                }
            } else {
                TraceRecord {
                    gap: 2_000,
                    addr: PhysAddr::new(i * 64 * 131),
                    is_write: false,
                }
            }
        })
        .collect();
    Box::new(ReplayTrace::new("mixed_phase", records))
}

/// Timed repetitions per configuration. Odd, so the median is an
/// actual observation rather than a midpoint.
const RUNS: usize = 5;

/// Wall-clock spread over the [`RUNS`] timed repetitions: the median is
/// the headline number (robust to one-off scheduler hiccups either
/// way), min/max bound the noise so a gate failure can be told apart
/// from a genuinely bimodal run.
struct Times {
    median: f64,
    min: f64,
    max: f64,
}

impl Times {
    fn from(mut secs: Vec<f64>) -> Self {
        assert!(!secs.is_empty(), "no timed runs");
        secs.sort_by(f64::total_cmp);
        Times {
            median: secs[secs.len() / 2],
            min: secs[0],
            max: secs[secs.len() - 1],
        }
    }
}

struct Sample {
    workload: &'static str,
    kernel: &'static str,
    cycles: u64,
    times: Times,
}

impl Sample {
    /// Median cycles/s — the headline and gated figure.
    fn cps(&self) -> f64 {
        self.cycles as f64 / self.times.median
    }

    /// Fastest observed cycles/s (from the minimum wall clock).
    fn cps_max(&self) -> f64 {
        self.cycles as f64 / self.times.min
    }

    /// Slowest observed cycles/s (from the maximum wall clock).
    fn cps_min(&self) -> f64 {
        self.cycles as f64 / self.times.max
    }
}

fn run(
    workload: &'static str,
    kernel: KernelMode,
    instrs: u64,
    trace: fn() -> Box<dyn TraceSource>,
) -> Sample {
    // Warm-up run to fault in code and allocator state.
    System::new(config(instrs / 4, kernel), vec![trace()])
        .expect("system")
        .run()
        .expect("warm-up run");
    // Wall-clock on a shared machine is noisy: time RUNS repetitions
    // and report the median, with min/max recorded as error bars.
    let mut cycles = 0;
    let mut times = Vec::with_capacity(RUNS);
    for _ in 0..RUNS {
        let sys = System::new(config(instrs, kernel), vec![trace()]).expect("system");
        let t0 = Instant::now();
        let result = sys.run().expect("timed run");
        times.push(t0.elapsed().as_secs_f64());
        cycles = result.cycles;
    }
    Sample {
        workload,
        kernel: match kernel {
            KernelMode::Lockstep => "lockstep",
            KernelMode::EventDriven => "event",
        },
        cycles,
        times: Times::from(times),
    }
}

fn main() {
    let samples = [
        run("idle_heavy", KernelMode::Lockstep, 400_000, idle_heavy_trace),
        run("idle_heavy", KernelMode::EventDriven, 400_000, idle_heavy_trace),
        run("saturated_attack", KernelMode::Lockstep, 200_000, saturated_trace),
        run("saturated_attack", KernelMode::EventDriven, 200_000, saturated_trace),
        run("mixed_phase", KernelMode::Lockstep, 200_000, mixed_phase_trace),
        run("mixed_phase", KernelMode::EventDriven, 200_000, mixed_phase_trace),
        // Multi-channel topology: the same event kernel over 4 channels
        // at each shard thread count. Simulated cycles must agree
        // exactly (sharding is bit-identical); wall clock shows the
        // fork-join cost/benefit on this host — a speedup needs real
        // hardware parallelism, so on a single-CPU runner t4 only
        // documents the synchronization overhead.
        run_mc4(100_000, 1),
        run_mc4(100_000, 2),
        run_mc4(100_000, 4),
    ];
    assert!(
        samples[6].cycles == samples[7].cycles && samples[7].cycles == samples[8].cycles,
        "mc4_saturated simulated cycles diverged across shard thread counts"
    );
    let mut json = String::from("{\n");
    for (i, s) in samples.iter().enumerate() {
        println!(
            "{:<18} {:<9} {:>12} cycles in {:>7.3}s = {:>12.0} cycles/s (min {:.0}, max {:.0})",
            s.workload,
            s.kernel,
            s.cycles,
            s.times.median,
            s.cps(),
            s.cps_min(),
            s.cps_max(),
        );
        // ci.sh extracts `cycles_per_sec` by stripping everything up to
        // the key and then all non-digits — it must stay the LAST
        // numeric field on the line, so min/max come before it.
        let _ = write!(
            json,
            "  \"{}/{}\": {{\"cycles\": {}, \"secs\": {:.6}, \"cps_min\": {:.0}, \"cps_max\": {:.0}, \"cycles_per_sec\": {:.0}}}",
            s.workload,
            s.kernel,
            s.cycles,
            s.times.median,
            s.cps_min(),
            s.cps_max(),
            s.cps()
        );
        json.push_str(if i + 1 < samples.len() { ",\n" } else { "\n" });
    }
    json.push_str("}\n");
    for pair in samples[..6].chunks(2) {
        let speedup = pair[1].cps() / pair[0].cps();
        println!("{:<18} event/lockstep speedup: {speedup:.2}x", pair[0].workload);
    }
    for s in &samples[7..] {
        let rel = s.cps() / samples[6].cps();
        println!("mc4_saturated      {} vs event@t1: {rel:.2}x", s.kernel);
    }
    let file = if metrics_enabled() {
        "BENCH_kernel_metrics.json"
    } else {
        "BENCH_kernel.json"
    };
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .map_or_else(|| std::path::PathBuf::from(file), |root| root.join(file));
    std::fs::write(&path, json).expect("write kernel bench json");
    println!("wrote {}", path.display());
}
