//! Criterion micro-benchmarks for the security-analysis math.

use criterion::{criterion_group, criterion_main, Criterion};
use mopac_analysis::binomial::{critical_updates, prob_fewer_than};
use mopac_analysis::markov::update_count_distribution;
use mopac_analysis::params::{mopac_c_params, mopac_d_params};

fn bench_binomial(c: &mut Criterion) {
    c.bench_function("binomial_tail_a472_c23", |b| {
        b.iter(|| prob_fewer_than(std::hint::black_box(472), 0.125, 23))
    });
    c.bench_function("critical_updates_search_t500", |b| {
        b.iter(|| critical_updates(std::hint::black_box(472), 0.125, 8.48e-9))
    });
}

fn bench_markov(c: &mut Criterion) {
    c.bench_function("markov_nup_chain_a975", |b| {
        b.iter(|| update_count_distribution(std::hint::black_box(975), 1.0 / 32.0, 1.0 / 16.0, 256))
    });
}

fn bench_param_derivation(c: &mut Criterion) {
    c.bench_function("mopac_c_params_t500", |b| {
        b.iter(|| mopac_c_params(std::hint::black_box(500)))
    });
    c.bench_function("mopac_d_params_t500", |b| {
        b.iter(|| mopac_d_params(std::hint::black_box(500)))
    });
}

criterion_group!(benches, bench_binomial, bench_markov, bench_param_derivation);
criterion_main!(benches);
