//! Micro-benchmarks for the security-analysis math.
//!
//! Plain `std::time` harness (no external benchmark framework): each
//! benchmark is warmed up, then timed over enough iterations to smooth
//! scheduler noise, reporting ns/iter.

use mopac_analysis::binomial::{critical_updates, prob_fewer_than};
use mopac_analysis::markov::update_count_distribution;
use mopac_analysis::params::{mopac_c_params, mopac_d_params};
use std::time::Instant;

fn bench<R>(name: &str, iters: u32, mut f: impl FnMut() -> R) {
    for _ in 0..iters / 10 {
        std::hint::black_box(f());
    }
    let start = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(f());
    }
    let elapsed = start.elapsed();
    println!(
        "{name:<36} {:>12.1} ns/iter ({iters} iters)",
        elapsed.as_nanos() as f64 / f64::from(iters)
    );
}

fn main() {
    bench("binomial_tail_a472_c23", 10_000, || {
        prob_fewer_than(std::hint::black_box(472), 0.125, 23)
    });
    bench("critical_updates_search_t500", 2_000, || {
        critical_updates(std::hint::black_box(472), 0.125, 8.48e-9)
    });
    bench("markov_nup_chain_a975", 200, || {
        update_count_distribution(std::hint::black_box(975), 1.0 / 32.0, 1.0 / 16.0, 256)
    });
    bench("mopac_c_params_t500", 2_000, || {
        mopac_c_params(std::hint::black_box(500))
    });
    bench("mopac_d_params_t500", 2_000, || {
        mopac_d_params(std::hint::black_box(500))
    });
}
