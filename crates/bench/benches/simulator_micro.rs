//! Micro-benchmarks for the simulator substrates.
//!
//! Plain `std::time` harness (no external benchmark framework): each
//! benchmark is warmed up, then timed over enough iterations to smooth
//! scheduler noise, reporting ns/iter.

use mopac::bank::BankMitigation;
use mopac::config::MitigationConfig;
use mopac::mint::MintSampler;
use mopac_cpu::llc::Llc;
use mopac_types::addr::PhysAddr;
use mopac_types::rng::DetRng;
use std::time::Instant;

fn bench<R>(name: &str, iters: u32, mut f: impl FnMut() -> R) {
    for _ in 0..iters / 10 {
        std::hint::black_box(f());
    }
    let start = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(f());
    }
    let elapsed = start.elapsed();
    println!(
        "{name:<36} {:>12.1} ns/iter ({iters} iters)",
        elapsed.as_nanos() as f64 / f64::from(iters)
    );
}

fn main() {
    {
        let mut s = MintSampler::new(8, DetRng::from_seed(1));
        bench("mint_sampler_1k_acts", 2_000, || {
            let mut hits = 0;
            for i in 0..1000u32 {
                if s.on_activate(i).is_some() {
                    hits += 1;
                }
            }
            hits
        });
    }
    {
        let cfg = MitigationConfig::mopac_d(500);
        let mut bank = BankMitigation::new(&cfg, 64 * 1024, DetRng::from_seed(2));
        let mut row = 0u32;
        bench("mopac_d_bank_1k_acts", 2_000, || {
            for _ in 0..1000 {
                bank.on_activate(row, 0.0);
                row = (row + 1) % 65536;
                if bank.alert_cause().is_some() {
                    bank.service_abo();
                }
            }
        });
    }
    {
        let cfg = MitigationConfig::prac(500);
        let mut bank = BankMitigation::new(&cfg, 64 * 1024, DetRng::from_seed(3));
        let mut row = 0u32;
        bench("prac_bank_1k_act_pre", 2_000, || {
            for _ in 0..1000 {
                bank.on_activate(row, 0.0);
                bank.on_precharge(row, true, 40.0);
                row = (row + 1) % 65536;
                if bank.alert_cause().is_some() {
                    bank.service_abo();
                }
            }
        });
    }
    {
        let mut llc = Llc::paper_default();
        let mut a = 0u64;
        bench("llc_streaming_1k", 2_000, || {
            for _ in 0..1000 {
                llc.access(PhysAddr::new(a), false);
                a = a.wrapping_add(64);
            }
        });
    }
}
