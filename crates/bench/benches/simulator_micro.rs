//! Criterion micro-benchmarks for the simulator substrates.

use criterion::{criterion_group, criterion_main, Criterion};
use mopac::bank::BankMitigation;
use mopac::config::MitigationConfig;
use mopac::mint::MintSampler;
use mopac_cpu::llc::Llc;
use mopac_types::addr::PhysAddr;
use mopac_types::rng::DetRng;

fn bench_mint(c: &mut Criterion) {
    c.bench_function("mint_sampler_1k_acts", |b| {
        let mut s = MintSampler::new(8, DetRng::from_seed(1));
        b.iter(|| {
            let mut hits = 0;
            for i in 0..1000u32 {
                if s.on_activate(i).is_some() {
                    hits += 1;
                }
            }
            hits
        })
    });
}

fn bench_bank_mitigation(c: &mut Criterion) {
    c.bench_function("mopac_d_bank_1k_acts", |b| {
        let cfg = MitigationConfig::mopac_d(500);
        let mut bank = BankMitigation::new(&cfg, 64 * 1024, DetRng::from_seed(2));
        let mut row = 0u32;
        b.iter(|| {
            for _ in 0..1000 {
                bank.on_activate(row, 0.0);
                row = (row + 1) % 65536;
                if bank.alert_cause().is_some() {
                    bank.service_abo();
                }
            }
        })
    });
    c.bench_function("prac_bank_1k_act_pre", |b| {
        let cfg = MitigationConfig::prac(500);
        let mut bank = BankMitigation::new(&cfg, 64 * 1024, DetRng::from_seed(3));
        let mut row = 0u32;
        b.iter(|| {
            for _ in 0..1000 {
                bank.on_activate(row, 0.0);
                bank.on_precharge(row, true, 40.0);
                row = (row + 1) % 65536;
                if bank.alert_cause().is_some() {
                    bank.service_abo();
                }
            }
        })
    });
}

fn bench_llc(c: &mut Criterion) {
    c.bench_function("llc_streaming_1k", |b| {
        let mut llc = Llc::paper_default();
        let mut a = 0u64;
        b.iter(|| {
            for _ in 0..1000 {
                llc.access(PhysAddr::new(a), false);
                a = a.wrapping_add(64);
            }
        })
    });
}

criterion_group!(benches, bench_mint, bench_bank_mitigation, bench_llc);
criterion_main!(benches);
