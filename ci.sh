#!/usr/bin/env bash
# Offline-friendly CI gate for the MoPAC reproduction workspace.
#
#   ./ci.sh            # build + test + lint
#   ./ci.sh --fast     # skip the release build (debug test run only)
#
# Everything runs with `--offline`-compatible settings: no step fetches
# from a registry, so the script works in the sealed build container.
set -euo pipefail
cd "$(dirname "$0")"

fast=0
[[ "${1:-}" == "--fast" ]] && fast=1

step() { printf '\n==> %s\n' "$*"; }

if [[ $fast -eq 0 ]]; then
  step "cargo build --release (tier-1)"
  cargo build --release
fi

step "cargo test -q (tier-1)"
cargo test -q

if [[ $fast -eq 0 ]]; then
  # Kernel-equivalence gate: the event-driven time-skipping kernel must
  # produce bit-identical results to the lockstep reference across
  # mitigations, page policies, and fault plans. Run in release so the
  # matrix finishes quickly; the debug run above already covers it at
  # -O0 with debug assertions.
  step "kernel equivalence suite (release)"
  cargo test -q -p mopac-sim --test kernel_equivalence --release

  # Throughput trend line: simulated cycles/sec for both kernels on
  # idle-heavy, saturated and mixed-phase workloads; writes
  # BENCH_kernel.json at the workspace root. The saturated event-kernel
  # number is gated against the committed baseline: the incremental
  # scheduler index is the whole point of that path, so a >10% drop
  # fails CI.
  step "kernel throughput bench (with saturated-attack regression gate)"
  extract_cps() {
    awk -F'"cycles_per_sec": ' "/$1\\/$2/ {gsub(/[^0-9.]/, \"\", \$2); print \$2}" BENCH_kernel.json
  }
  baseline_cps=""
  if [[ -f BENCH_kernel.json ]]; then
    baseline_cps=$(extract_cps saturated_attack event)
  fi
  cargo bench --bench kernel_throughput
  if [[ -n "$baseline_cps" ]]; then
    new_cps=$(extract_cps saturated_attack event)
    awk -v new="$new_cps" -v old="$baseline_cps" 'BEGIN {
      if (new + 0 < 0.9 * old) {
        printf "FAIL: saturated_attack/event regressed: %.0f < 90%% of committed baseline %.0f cycles/sec\n", new, old
        exit 1
      }
      printf "saturated_attack/event: %.0f cycles/sec (committed baseline %.0f, gate 90%%)\n", new, old
    }'
  else
    echo "no committed BENCH_kernel.json baseline; regression gate skipped"
  fi

  # Metrics-overhead gate: the same saturated-attack run with the
  # observability sink enabled (MOPAC_METRICS=1, writes
  # BENCH_kernel_metrics.json) must stay within 10% of the committed
  # metrics-off baseline — the sink's enabled cost is bounded, and its
  # disabled cost is zero by the bit-identity suite above.
  step "kernel throughput bench with metrics sink (overhead gate)"
  extract_metrics_cps() {
    awk -F'"cycles_per_sec": ' "/$1\\/$2/ {gsub(/[^0-9.]/, \"\", \$2); print \$2}" BENCH_kernel_metrics.json
  }
  MOPAC_METRICS=1 cargo bench --bench kernel_throughput
  if [[ -n "$baseline_cps" ]]; then
    metrics_cps=$(extract_metrics_cps saturated_attack event)
    awk -v new="$metrics_cps" -v old="$baseline_cps" 'BEGIN {
      if (new + 0 < 0.9 * old) {
        printf "FAIL: saturated_attack/event with metrics enabled: %.0f < 90%% of metrics-off baseline %.0f cycles/sec\n", new, old
        exit 1
      }
      printf "saturated_attack/event with metrics: %.0f cycles/sec (metrics-off baseline %.0f, gate 90%%)\n", new, old
    }'
  else
    echo "no committed BENCH_kernel.json baseline; metrics-overhead gate skipped"
  fi

  # Security gate: every engine in the mitigation registry versus the
  # attack battery at a reduced cycle budget; any oracle violation
  # fails the binary (exit 1).
  step "registry attack suite (release, reduced budget)"
  MOPAC_ATTACK_CYCLES=250000 cargo run --release -q -p mopac-bench --bin attack_suite

  # Performance trend line: slowdown vs baseline per registered
  # engine; writes BENCH_mitigations.json at the workspace root.
  step "mitigation slowdown bench (reduced budget)"
  MOPAC_INSTRS=40000 cargo run --release -q -p mopac-bench --bin bench_mitigations

  # Docs gate: rustdoc must build warning-free (broken intra-doc links
  # in the engine/registry API surface would land here first).
  step "cargo doc (no-deps, -D warnings)"
  RUSTDOCFLAGS="-D warnings" cargo doc --no-deps -q
fi

# Lint gate. The robustness contract: the core and simulation
# libraries (mopac, mopac-dram, mopac-memctrl, mopac-sim,
# mopac-workloads) carry no unwrap/expect in non-test code — misuse
# must surface as MopacResult. Those crates opt
# in via `#![warn(clippy::unwrap_used, clippy::expect_used)]` in their
# lib.rs (promoted to errors by -D warnings here); tests and bench
# binaries are exempt via clippy.toml (allow-unwrap-in-tests).
if cargo clippy --version >/dev/null 2>&1; then
  step "cargo clippy (workspace, -D warnings)"
  cargo clippy --workspace --all-targets -- -D warnings
else
  echo "WARNING: cargo clippy not installed; skipping lint gate" >&2
fi

step "OK"
