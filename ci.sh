#!/usr/bin/env bash
# Offline-friendly CI gate for the MoPAC reproduction workspace.
#
#   ./ci.sh            # build + test + lint
#   ./ci.sh --fast     # skip the release build (debug test run only)
#
# Everything runs with `--offline`-compatible settings: no step fetches
# from a registry, so the script works in the sealed build container.
set -euo pipefail
cd "$(dirname "$0")"

fast=0
[[ "${1:-}" == "--fast" ]] && fast=1

step() { printf '\n==> %s\n' "$*"; }

if [[ $fast -eq 0 ]]; then
  step "cargo build --release (tier-1)"
  cargo build --release
fi

step "cargo test -q (tier-1)"
cargo test -q

# Lint gate. The robustness contract: the simulation libraries
# (mopac-dram, mopac-memctrl, mopac-sim) carry no unwrap/expect in
# non-test code — misuse must surface as MopacResult. Those crates opt
# in via `#![warn(clippy::unwrap_used, clippy::expect_used)]` in their
# lib.rs (promoted to errors by -D warnings here); tests and bench
# binaries are exempt via clippy.toml (allow-unwrap-in-tests).
if cargo clippy --version >/dev/null 2>&1; then
  step "cargo clippy (workspace, -D warnings)"
  cargo clippy --workspace --all-targets -- -D warnings
else
  echo "WARNING: cargo clippy not installed; skipping lint gate" >&2
fi

step "OK"
