#!/usr/bin/env bash
# Offline-friendly CI gate for the MoPAC reproduction workspace.
#
#   ./ci.sh            # build + test + lint
#   ./ci.sh --fast     # skip the release build (debug test run only)
#
# Everything runs with `--offline`-compatible settings: no step fetches
# from a registry, so the script works in the sealed build container.
set -euo pipefail
cd "$(dirname "$0")"

fast=0
[[ "${1:-}" == "--fast" ]] && fast=1

step() { printf '\n==> %s\n' "$*"; }

if [[ $fast -eq 0 ]]; then
  step "cargo build --release (tier-1)"
  cargo build --release
fi

step "cargo test -q (tier-1)"
cargo test -q

if [[ $fast -eq 0 ]]; then
  # Kernel-equivalence gate: the event-driven time-skipping kernel must
  # produce bit-identical results to the lockstep reference across
  # mitigations, page policies, and fault plans. Run in release so the
  # matrix finishes quickly; the debug run above already covers it at
  # -O0 with debug assertions.
  step "kernel equivalence suite (release)"
  cargo test -q -p mopac-sim --test kernel_equivalence --release

  # Throughput trend line: simulated cycles/sec for both kernels on
  # idle-heavy, saturated and mixed-phase workloads; writes
  # BENCH_kernel.json at the workspace root. The saturated event-kernel
  # number is gated against the committed baseline: the incremental
  # scheduler index is the whole point of that path, so a >10% drop
  # fails CI.
  step "kernel throughput bench (with saturated-attack regression gate)"
  extract_cps() {
    awk -F'"cycles_per_sec": ' "/$1\\/$2/ {gsub(/[^0-9.]/, \"\", \$2); print \$2}" BENCH_kernel.json
  }
  baseline_cps=""
  if [[ -f BENCH_kernel.json ]]; then
    baseline_cps=$(extract_cps saturated_attack event)
  fi
  cargo bench --bench kernel_throughput
  if [[ -n "$baseline_cps" ]]; then
    new_cps=$(extract_cps saturated_attack event)
    awk -v new="$new_cps" -v old="$baseline_cps" 'BEGIN {
      if (new + 0 < 0.9 * old) {
        printf "FAIL: saturated_attack/event regressed: %.0f < 90%% of committed baseline %.0f cycles/sec\n", new, old
        exit 1
      }
      printf "saturated_attack/event: %.0f cycles/sec (committed baseline %.0f, gate 90%%)\n", new, old
    }'
  else
    echo "no committed BENCH_kernel.json baseline; regression gate skipped"
  fi

  # Macro-batching scaling gate: with the fork-join handoff amortized
  # over whole cycle ranges, the 4-channel saturated run at 2 and 4
  # shard threads must stay within 15% of the 1-thread throughput even
  # on this possibly single-CPU runner (threads can only pay off with
  # real hardware parallelism — the multicore *expectation* is a
  # speedup, but what CI can gate everywhere is "not slower than 85%").
  # Before batching, per-cycle forking made t2/t4 a 6-9x slowdown.
  t1_cps=$(extract_cps mc4_saturated event@t1)
  t2_cps=$(extract_cps mc4_saturated event@t2)
  t4_cps=$(extract_cps mc4_saturated event@t4)
  awk -v t1="$t1_cps" -v t2="$t2_cps" -v t4="$t4_cps" 'BEGIN {
    if (t2 + 0 < 0.85 * t1 || t4 + 0 < 0.85 * t1) {
      printf "FAIL: mc4_saturated sharded throughput collapsed: t1=%.0f t2=%.0f t4=%.0f cycles/sec (gate: t2,t4 >= 85%% of t1)\n", t1, t2, t4
      exit 1
    }
    printf "mc4_saturated event kernel: t1=%.0f t2=%.0f t4=%.0f cycles/sec (gate: t2,t4 >= 85%% of t1)\n", t1, t2, t4
  }'

  # Metrics-overhead gate: the same saturated-attack run with the
  # observability sink enabled (MOPAC_METRICS=1, writes
  # BENCH_kernel_metrics.json) must stay within 10% of the committed
  # metrics-off baseline — the sink's enabled cost is bounded, and its
  # disabled cost is zero by the bit-identity suite above.
  step "kernel throughput bench with metrics sink (overhead gate)"
  extract_metrics_cps() {
    awk -F'"cycles_per_sec": ' "/$1\\/$2/ {gsub(/[^0-9.]/, \"\", \$2); print \$2}" BENCH_kernel_metrics.json
  }
  MOPAC_METRICS=1 cargo bench --bench kernel_throughput
  if [[ -n "$baseline_cps" ]]; then
    metrics_cps=$(extract_metrics_cps saturated_attack event)
    awk -v new="$metrics_cps" -v old="$baseline_cps" 'BEGIN {
      if (new + 0 < 0.9 * old) {
        printf "FAIL: saturated_attack/event with metrics enabled: %.0f < 90%% of metrics-off baseline %.0f cycles/sec\n", new, old
        exit 1
      }
      printf "saturated_attack/event with metrics: %.0f cycles/sec (metrics-off baseline %.0f, gate 90%%)\n", new, old
    }'
  else
    echo "no committed BENCH_kernel.json baseline; metrics-overhead gate skipped"
  fi

  # Security gate: every engine in the mitigation registry versus the
  # attack battery at a reduced cycle budget; any oracle violation
  # fails the binary (exit 1). The bank-scope `practical` engine must
  # be present in the matrix — if it ever drops out of the registry
  # the suite would pass vacuously, so its absence fails here.
  step "registry attack suite (release, reduced budget)"
  MOPAC_ATTACK_CYCLES=250000 cargo run --release -q -p mopac-bench --bin attack_suite
  if ! grep -q '^practical,' EXPERIMENTS-data/attack_suite.csv; then
    echo "FAIL: 'practical' missing from the attack-suite matrix"
    exit 1
  fi

  # Performance trend line: slowdown vs baseline per registered
  # engine (plus blocked-bank cycles under a fixed ALERT-pressure
  # attack); writes BENCH_mitigations.json at the workspace root. The
  # committed file is generated at this exact budget and diff-checked:
  # a change means either a real perf/recovery regression or a stale
  # committed baseline — regenerate with MOPAC_INSTRS=40000 and
  # commit the new file deliberately.
  step "mitigation slowdown bench (reduced budget, diff-checked)"
  MOPAC_INSTRS=40000 cargo run --release -q -p mopac-bench --bin bench_mitigations
  if ! git diff --quiet -- BENCH_mitigations.json; then
    echo "FAIL: BENCH_mitigations.json drifted from the committed baseline"
    git diff -- BENCH_mitigations.json | head -20
    exit 1
  fi

  # Attack-success sweep: the victim-data flip plane's verdict per
  # engine × T_RH distribution × ECC mode at a fixed cycle budget;
  # writes BENCH_attack_success.json at the workspace root and
  # diff-checks it like BENCH_mitigations.json. The binary itself
  # asserts the ECC monotonicity contract (SEC never observes *more*
  # corrupted reads than no ECC at the same seed) and panics on drift.
  step "attack-success sweep (flip plane, diff-checked)"
  cargo run --release -q -p mopac-bench --bin attack_success
  if ! git diff --quiet -- BENCH_attack_success.json; then
    echo "FAIL: BENCH_attack_success.json drifted from the committed baseline"
    git diff -- BENCH_attack_success.json | head -20
    exit 1
  fi

  # Flip-plane zero-cost gate: with the victim-data plane disabled
  # (every committed config), all engines × both kernels must stay
  # byte-identical to the committed goldens in
  # tests/goldens/bit_identity.txt — snapshot bytes included, so the
  # plane's disabled cost is provably zero.
  step "flip-disabled bit-identity goldens (release)"
  cargo test -q -p mopac-sim --test bit_identity_goldens --release

  # Crash-safety gate 1: kill-and-resume. Run the checkpointed fault
  # campaign, SIGKILL it mid-flight, resume from the checkpoint, and
  # require the final CSV to be byte-identical to an uninterrupted run.
  step "checkpoint kill-and-resume gate"
  ckpt_root=$(mktemp -d)
  trap 'rm -rf "$ckpt_root"' EXIT
  fc=./target/release/fault_campaign
  MOPAC_FAULT_INSTRS=300000 MOPAC_DATA_DIR="$ckpt_root/ref" "$fc" >/dev/null
  MOPAC_FAULT_INSTRS=300000 MOPAC_DATA_DIR="$ckpt_root/run" \
    MOPAC_CKPT_DIR="$ckpt_root/ckpt" "$fc" >/dev/null 2>&1 &
  fc_pid=$!
  sleep 1
  kill -9 "$fc_pid" 2>/dev/null || true
  wait "$fc_pid" 2>/dev/null || true
  committed=$(grep -c . "$ckpt_root/ckpt/cells.log" 2>/dev/null || echo 0)
  MOPAC_FAULT_INSTRS=300000 MOPAC_DATA_DIR="$ckpt_root/run" \
    MOPAC_CKPT_DIR="$ckpt_root/ckpt" "$fc" >/dev/null
  if ! cmp -s "$ckpt_root/ref/fault_campaign.csv" "$ckpt_root/run/fault_campaign.csv"; then
    echo "FAIL: resumed campaign CSV differs from the uninterrupted run"
    diff "$ckpt_root/ref/fault_campaign.csv" "$ckpt_root/run/fault_campaign.csv" | head
    exit 1
  fi
  echo "kill-and-resume OK: CSVs byte-identical ($committed cell(s) survived the SIGKILL)"

  # Crash-safety gate 2: periodic snapshots on a saturated attack run
  # (every 32 REF windows) must cost < 5% wall-clock.
  step "snapshot overhead gate (saturated attack, < 5%)"
  overhead=$(MOPAC_ATTACK_CYCLES=20000000 ./target/release/snapshot_overhead \
    | tee /dev/stderr | awk -F': ' '/snapshot_overhead_pct/ {print $2}')
  awk -v o="$overhead" 'BEGIN {
    if (o + 0 >= 5.0) {
      printf "FAIL: snapshot overhead %.2f%% >= 5%%\n", o
      exit 1
    }
    printf "snapshot overhead %.2f%% (gate: < 5%%)\n", o
  }'

  # Shard-determinism gate: a 4-channel saturated run sharded across
  # worker threads must be bit-identical to the serial loop — report
  # CSV, metrics JSONL, and the mid-run snapshot digest all byte-equal
  # at MOPAC_SHARD_THREADS in {1, 4}. (The 2x wall-clock speedup is a
  # multicore expectation, not gated: this runner may have one CPU.)
  step "shard determinism gate (MOPAC_SHARD_THREADS 1 vs 4)"
  shard_dir=$(mktemp -d)
  sd=./target/release/shard_determinism
  MOPAC_INSTRS=20000 MOPAC_SHARD_THREADS=1 MOPAC_SHARD_TAG=gate \
    MOPAC_DATA_DIR="$shard_dir/t1" "$sd" >/dev/null
  MOPAC_INSTRS=20000 MOPAC_SHARD_THREADS=4 MOPAC_SHARD_TAG=gate \
    MOPAC_DATA_DIR="$shard_dir/t4" "$sd" >/dev/null
  for f in shard_det_gate.csv shard_det_gate_metrics.jsonl; do
    if ! cmp -s "$shard_dir/t1/$f" "$shard_dir/t4/$f"; then
      echo "FAIL: $f differs between MOPAC_SHARD_THREADS=1 and =4"
      diff "$shard_dir/t1/$f" "$shard_dir/t4/$f" | head
      exit 1
    fi
  done
  # Batched vs per-cycle leg: disabling macro batching entirely
  # (MOPAC_SHARD_BATCH=0) must leave every simulation observable
  # byte-identical — only the kernel.* bookkeeping (sync rounds, batch
  # lengths) may differ, so it is filtered from the JSONL before the
  # compare.
  MOPAC_INSTRS=20000 MOPAC_SHARD_THREADS=4 MOPAC_SHARD_TAG=gate MOPAC_SHARD_BATCH=0 \
    MOPAC_DATA_DIR="$shard_dir/nb" "$sd" >/dev/null
  if ! cmp -s "$shard_dir/t1/shard_det_gate.csv" "$shard_dir/nb/shard_det_gate.csv"; then
    echo "FAIL: shard_det_gate.csv differs between batched and per-cycle stepping"
    diff "$shard_dir/t1/shard_det_gate.csv" "$shard_dir/nb/shard_det_gate.csv" | head
    exit 1
  fi
  if ! cmp -s <(grep -v '"kernel\.' "$shard_dir/t1/shard_det_gate_metrics.jsonl") \
              <(grep -v '"kernel\.' "$shard_dir/nb/shard_det_gate_metrics.jsonl"); then
    echo "FAIL: metrics JSONL (minus kernel.*) differs between batched and per-cycle stepping"
    exit 1
  fi
  rm -rf "$shard_dir"
  echo "shard determinism OK: thread counts and batched-vs-per-cycle all byte-identical"

  # Examples must keep building (they are the documented entry points).
  step "cargo build --release --examples"
  cargo build --release --examples

  # Docs gate: rustdoc must build warning-free (broken intra-doc links
  # in the engine/registry API surface would land here first).
  step "cargo doc (no-deps, -D warnings)"
  RUSTDOCFLAGS="-D warnings" cargo doc --no-deps -q
fi

# Lint gate. The robustness contract: every library in the workspace
# (mopac, mopac-dram, mopac-memctrl, mopac-sim, mopac-workloads,
# mopac-bench, mopac-analysis) carries no unwrap/expect in non-test
# code — misuse must surface as MopacResult. Each crate opts
# in via `#![warn(clippy::unwrap_used, clippy::expect_used)]` in its
# lib.rs (promoted to errors by -D warnings here); tests and bench
# binaries are exempt via clippy.toml (allow-unwrap-in-tests).
if cargo clippy --version >/dev/null 2>&1; then
  step "cargo clippy (workspace, -D warnings)"
  cargo clippy --workspace --all-targets -- -D warnings
else
  echo "WARNING: cargo clippy not installed; skipping lint gate" >&2
fi

step "OK"
