//! Fault-injection integration suite: the system must degrade
//! gracefully — never panic, never let the oracle record an escape on a
//! secure configuration — while scheduled faults hammer the ALERT/RFM
//! machinery, and the livelock watchdog must convert a genuinely starved
//! configuration into a typed error instead of an endless spin.

use mopac::config::MitigationConfig;
use mopac_cpu::trace::{ReplayTrace, TraceRecord, TraceSource};
use mopac_sim::experiment::build_traces;
use mopac_sim::fault::{FaultKind, FaultPlan};
use mopac_sim::system::{System, SystemConfig};
use mopac_types::addr::PhysAddr;
use mopac_types::error::MopacError;
use mopac_types::geometry::DramGeometry;

fn tiny_cfg(mit: MitigationConfig, instrs: u64) -> SystemConfig {
    let mut cfg = SystemConfig::paper_default(mit, instrs);
    cfg.geometry = DramGeometry::tiny();
    cfg.enable_checker = true;
    cfg
}

/// The headline robustness scenario from the issue: an ALERT storm
/// against MoPAC-D completes the run without a panic and with zero
/// Rowhammer-checker escapes.
#[test]
fn alert_storm_on_mopac_d_completes_without_escapes() {
    let mut cfg = tiny_cfg(MitigationConfig::mopac_d(500), 20_000);
    cfg.fault_plan = Some(FaultPlan::new(0xBEEF).with(
        1_000,
        FaultKind::AlertStorm {
            subchannel: 0,
            period: 1_100,
            count: 25,
        },
    ));
    let traces = build_traces("xz", &cfg).unwrap();
    let r = System::new(cfg, traces).unwrap().run().unwrap();
    assert_eq!(r.violations, 0, "oracle escapes under ALERT storm");
    r.check_oracle().unwrap();
    assert_eq!(r.faults_applied, 25, "every storm pulse applied");
    // Pulses arriving while ALERT is still asserted merge into the
    // pending assertion (open-drain line), so slightly fewer distinct
    // alerts than pulses is expected.
    assert!(r.dram.alerts() >= 20, "alerts {}", r.dram.alerts());
    assert!(r.dram.rfms >= 20, "spurious ALERTs must be serviced");
}

/// Dropped RFMs re-assert ALERT; the controller re-issues until the
/// device services them. No panic, no escape, forward progress.
#[test]
fn dropped_rfms_recover_via_reissue() {
    let mut cfg = tiny_cfg(MitigationConfig::prac(500), 15_000);
    cfg.fault_plan = Some(
        FaultPlan::new(0xD0)
            .with(500, FaultKind::DropRfm { count: 2 })
            .with(
                1_000,
                FaultKind::AlertStorm {
                    subchannel: 0,
                    period: 3_000,
                    count: 4,
                },
            ),
    );
    let traces = build_traces("xz", &cfg).unwrap();
    let r = System::new(cfg, traces).unwrap().run().unwrap();
    assert_eq!(r.violations, 0);
    // Each storm pulse costs one RFM bus transaction; the first two are
    // swallowed by the drop fault (counted in injected_faults alongside
    // the 4 pulses) and, being spurious, leave no bank needing service.
    assert!(r.dram.rfms >= 4, "rfms {}", r.dram.rfms);
    assert!(
        r.dram.injected_faults >= 6,
        "injected {}",
        r.dram.injected_faults
    );
}

/// A stuck-open bank plus delayed RFMs: timing gates stretch but the
/// run still completes and stays secure.
#[test]
fn stuck_bank_and_slow_rfms_degrade_gracefully() {
    let mut cfg = tiny_cfg(MitigationConfig::mopac_c(500), 15_000);
    cfg.fault_plan = Some(
        FaultPlan::new(0x51)
            .with(0, FaultKind::DelayRfm { extra_cycles: 300 })
            .with(
                2_000,
                FaultKind::StuckBank {
                    subchannel: 0,
                    bank: 1,
                    duration: 20_000,
                },
            )
            .with(
                2_500,
                FaultKind::AlertStorm {
                    subchannel: 0,
                    period: 2_500,
                    count: 3,
                },
            ),
    );
    let traces = build_traces("xz", &cfg).unwrap();
    let r = System::new(cfg, traces).unwrap().run().unwrap();
    assert_eq!(r.violations, 0);
    assert!(r.faults_applied >= 5);
}

/// Counter bit-flips silently corrupt mitigation state; the run must
/// still finish and the consequence is observable only through the
/// structured oracle diagnostic, never an abort.
#[test]
fn counter_bitflips_surface_through_oracle_not_abort() {
    let mut cfg = tiny_cfg(MitigationConfig::prac(500), 15_000);
    let mut plan = FaultPlan::new(0xB17);
    for i in 0..16u64 {
        plan = plan.with(
            500 + i * 500,
            FaultKind::CounterBitFlip {
                subchannel: 0,
                bank: (i % 4) as u32,
                bit: 8,
            },
        );
    }
    cfg.fault_plan = Some(plan);
    let traces = build_traces("xz", &cfg).unwrap();
    let r = System::new(cfg, traces).unwrap().run().unwrap();
    assert_eq!(r.faults_applied, 16);
    // Whatever the oracle observed, it is carried as data.
    match r.check_oracle() {
        Ok(()) => {}
        Err(MopacError::OracleViolation { violations, .. }) => {
            assert_eq!(violations, r.violations);
        }
        Err(other) => panic!("unexpected error {other}"),
    }
}

/// Trace corruption scrambles addresses but the run completes and the
/// corruption count is reported.
#[test]
fn trace_corruption_reported_in_result() {
    let mut cfg = tiny_cfg(MitigationConfig::baseline(), 15_000);
    cfg.fault_plan =
        Some(FaultPlan::new(0xC0).with(0, FaultKind::TraceCorruption { rate: 0.05 }));
    let traces = build_traces("xz", &cfg).unwrap();
    let r = System::new(cfg, traces).unwrap().run().unwrap();
    assert!(r.trace_corruptions > 0, "no records corrupted at 5%");
    assert_eq!(r.violations, 0);
}

/// The livelock watchdog: a configuration that can never make progress
/// (a bank wedged longer than the watchdog window, single in-order
/// stream into that bank) must surface `MopacError::Livelock` rather
/// than spin to the cycle cap.
#[test]
fn livelock_watchdog_fires_on_starved_configuration() {
    let mut cfg = tiny_cfg(MitigationConfig::baseline(), 1_000_000);
    cfg.prefetch_distance = 0;
    cfg.livelock_window = 20_000;
    cfg.max_cycles = 50_000_000;
    // Wedge bank 0 of sub-channel 0 essentially forever.
    cfg.fault_plan = Some(FaultPlan::new(0x11).with(
        100,
        FaultKind::StuckBank {
            subchannel: 0,
            bank: 0,
            duration: 40_000_000,
        },
    ));
    // A single-address stream: every access lands in the wedged bank.
    let records: Vec<TraceRecord> = vec![TraceRecord {
        gap: 0,
        addr: PhysAddr::new(0),
        is_write: false,
    }];
    let trace = Box::new(ReplayTrace::new("starved", records)) as Box<dyn TraceSource>;
    let err = System::new(cfg, vec![trace]).unwrap().run().unwrap_err();
    let MopacError::Livelock {
        cycle,
        stalled_for,
        retired,
    } = err
    else {
        panic!("expected Livelock, got {err}");
    };
    assert!(stalled_for >= 20_000);
    assert!(cycle < 1_000_000, "watchdog too slow: fired at {cycle}");
    let _ = retired;
}

/// Disabling the watchdog (window 0) falls through to the cycle cap,
/// which is also a typed error, not a panic.
#[test]
fn cycle_cap_is_a_typed_error() {
    let mut cfg = tiny_cfg(MitigationConfig::baseline(), u64::MAX);
    cfg.livelock_window = 0;
    cfg.max_cycles = 30_000;
    let traces = build_traces("xz", &cfg).unwrap();
    let err = System::new(cfg, traces).unwrap().run().unwrap_err();
    assert!(
        matches!(err, MopacError::CycleCapExceeded { cap: 30_000, .. }),
        "{err}"
    );
}

/// An empty trace set is a config error at construction, not a panic.
#[test]
fn empty_traces_rejected_at_construction() {
    let cfg = tiny_cfg(MitigationConfig::baseline(), 1_000);
    let err = System::new(cfg, Vec::new()).err().expect("must fail");
    assert!(matches!(err, MopacError::Config { .. }), "{err}");
}
