//! Pre-refactor bit-identity goldens (ISSUE 8 satellite).
//!
//! The subarray/bank-isolation refactor must leave every pre-existing
//! engine bit-identical at `subarrays_per_bank = 1` under
//! `RecoveryScope::SubChannel`: same cycle counts, same RNG streams,
//! same snapshot bytes. This test pins that property against goldens
//! captured from the tree *before* the refactor landed: a mid-run
//! snapshot digest (FNV-1a-64 over the full `System::snapshot` byte
//! stream — device, controller, engines, RNGs and all) plus the final
//! run statistics, per pre-existing engine × kernel.
//!
//! Regenerate (only legitimate when a PR intentionally changes the
//! snapshot format or simulation behavior) with:
//!
//! ```text
//! MOPAC_WRITE_GOLDENS=1 cargo test -p mopac-sim --test bit_identity_goldens
//! ```

use mopac_sim::experiment::{build_traces, mitigation_preset};
use mopac_sim::system::{KernelMode, System, SystemConfig};
use mopac_types::geometry::DramGeometry;
use mopac_types::snapshot::fnv1a64;
use std::fmt::Write as _;
use std::path::PathBuf;

/// The engines that existed before the subarray refactor. `practical`
/// is deliberately absent: it is the engine the refactor introduces,
/// so it has no pre-refactor behavior to pin.
const PRE_REFACTOR_ENGINES: [&str; 7] = [
    "baseline",
    "prac",
    "mopac-c",
    "mopac-d",
    "mopac-d-nup",
    "qprac",
    "cnc-prac",
];

fn golden_path() -> PathBuf {
    // CARGO_MANIFEST_DIR is crates/sim; the goldens live next to the
    // workspace-level tests.
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/goldens/bit_identity.txt")
}

/// One golden line: mid-run snapshot digest + end-of-run statistics.
fn golden_line(engine: &str, kernel: KernelMode) -> String {
    let mut cfg = SystemConfig::paper_default(
        mitigation_preset(engine, 500).expect("pre-existing engine"),
        20_000,
    );
    cfg.geometry = DramGeometry::tiny();
    cfg.enable_checker = true;
    cfg.kernel = kernel;
    let mut sys = System::new(cfg.clone(), build_traces("xz", &cfg).unwrap()).unwrap();
    // Pause three REF windows in: deep enough that counters, queues and
    // RNG streams have all moved, early enough that the run continues.
    let paused = sys.run_until_refs(3).unwrap();
    let (digest, result) = match paused {
        Some(done) => (0u64, done),
        None => {
            let digest = fnv1a64(&sys.snapshot());
            (digest, sys.run_to_completion().unwrap())
        }
    };
    let kname = match kernel {
        KernelMode::EventDriven => "event",
        KernelMode::Lockstep => "lockstep",
    };
    format!(
        "{engine},{kname},{digest:016x},{},{},{},{},{},{},{},{:016x}",
        result.cycles,
        result.dram.activates,
        result.dram.reads,
        result.dram.rfms,
        result.dram.refreshes,
        result.mitigation.mitigations,
        result.violations,
        result.avg_read_latency.to_bits(),
    )
}

#[test]
fn pre_refactor_engines_match_goldens() {
    let mut lines = Vec::new();
    for engine in PRE_REFACTOR_ENGINES {
        for kernel in [KernelMode::EventDriven, KernelMode::Lockstep] {
            lines.push(golden_line(engine, kernel));
        }
    }
    let mut rendered = String::from(
        "# engine,kernel,snapshot_fnv1a64,cycles,activates,reads,rfms,refreshes,\
         mitigations,violations,avg_read_latency_bits\n",
    );
    for l in &lines {
        let _ = writeln!(rendered, "{l}");
    }

    let path = golden_path();
    if std::env::var("MOPAC_WRITE_GOLDENS").is_ok_and(|v| v == "1") {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &rendered).unwrap();
        eprintln!("wrote {}", path.display());
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing goldens at {} ({e}); generate with MOPAC_WRITE_GOLDENS=1",
            path.display()
        )
    });
    let golden_lines: Vec<&str> = golden
        .lines()
        .filter(|l| !l.starts_with('#') && !l.is_empty())
        .collect();
    assert_eq!(
        golden_lines.len(),
        lines.len(),
        "golden file has {} rows, expected {}",
        golden_lines.len(),
        lines.len()
    );
    for (got, want) in lines.iter().zip(&golden_lines) {
        assert_eq!(
            got, want,
            "bit-identity regression vs pre-refactor golden \
             (format: engine,kernel,digest,cycles,activates,reads,rfms,refreshes,\
             mitigations,violations,latency_bits)"
        );
    }
}
