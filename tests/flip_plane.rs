//! Victim-data flip-plane integration (ISSUE 10 tentpole).
//!
//! The flip plane gives campaigns a *physical* attack verdict — did any
//! read return corrupted data after ECC — alongside the oracle's
//! protocol verdict. These tests pin its end-to-end contract through
//! [`AttackRun`]: per-seed determinism, ECC monotonicity per engine,
//! snapshot round-trips, and typed cross-shape restore failures.

use mopac::config::MitigationConfig;
use mopac_dram::flip::{EccMode, FlipPlaneConfig, TrhDistribution};
use mopac_sim::attack::{AttackConfig, AttackRun};
use mopac_types::error::MopacError;
use mopac_types::geometry::{BankRef, DramGeometry};
use mopac_workloads::attack::DoubleSidedHammer;

const CYCLES: u64 = 400_000;

fn attack(mit: MitigationConfig, flip: Option<FlipPlaneConfig>) -> mopac_sim::AttackResult {
    let cfg = AttackConfig {
        geometry: DramGeometry::tiny(),
        flip,
        ..AttackConfig::new(mit, CYCLES)
    };
    let mut p = DoubleSidedHammer::new(BankRef::new(0, 0), 100);
    let mut run = AttackRun::new(&cfg, &mut p);
    run.run_until(CYCLES).unwrap();
    run.verify_readback();
    run.result()
}

/// A broken mitigation with the plane armed at the oracle threshold
/// corrupts data, the corruption is observed by the readback pass, and
/// the whole verdict is a pure function of the seed.
#[test]
fn broken_config_attack_succeeds_deterministically() {
    let broken = || MitigationConfig::prac(500).with_alert_threshold(100_000);
    let flip = FlipPlaneConfig::new(TrhDistribution::Constant(500)).with_flip_probability(0.5);
    let a = attack(broken(), Some(flip));
    let b = attack(broken(), Some(flip));
    assert!(a.violations > 0, "oracle missed the broken config");
    assert!(a.flip.bit_flips > 0, "no victim bits flipped");
    assert!(a.attack_success(), "corruption never observed");
    assert_eq!(a.flip, b.flip, "flip verdict not deterministic per seed");
    assert_eq!(a.violations, b.violations);
}

/// A working engine at the same threshold keeps the modeled cells
/// clean: oracle-secure implies data-secure when every cell is at
/// least as strong as the enforced T_RH.
#[test]
fn protected_engine_attack_fails() {
    let flip = FlipPlaneConfig::new(TrhDistribution::Constant(500)).with_flip_probability(1.0);
    let r = attack(MitigationConfig::prac(500), Some(flip));
    assert_eq!(r.violations, 0);
    assert_eq!(r.flip.bit_flips, 0, "protected run still flipped bits");
    assert!(!r.attack_success());
}

/// With the plane disabled the result carries an all-zero [`FlipStats`]
/// and a negative verdict — the legacy shape.
#[test]
fn disabled_plane_reports_no_corruption() {
    let r = attack(MitigationConfig::prac(500), None);
    assert_eq!(r.flip, mopac_dram::flip::FlipStats::default());
    assert!(!r.attack_success());
}

/// ECC monotonicity, end to end, for every registered tracking engine:
/// with per-row thresholds drawn *below* the enforced T_RH (cells the
/// engine cannot protect), SEC ECC never observes more corrupted reads
/// than no ECC at the same seed.
#[test]
fn ecc_on_never_observes_more_corruption_than_ecc_off() {
    let weak = TrhDistribution::Uniform { lo: 20, hi: 120 };
    for spec in mopac::EngineRegistry::builtin().specs().iter().filter(|s| s.tracks()) {
        let raw = attack(
            (spec.preset)(500),
            Some(FlipPlaneConfig::new(weak).with_flip_probability(0.25)),
        );
        let ecc = attack(
            (spec.preset)(500),
            Some(
                FlipPlaneConfig::new(weak)
                    .with_flip_probability(0.25)
                    .with_ecc(EccMode::Sec),
            ),
        );
        assert!(
            raw.flip.bit_flips > 0,
            "{}: weak cells never flipped",
            spec.name
        );
        assert!(
            ecc.flip.corrupted_reads <= raw.flip.corrupted_reads,
            "{}: ECC-on observed {} corrupted reads vs {} ECC-off",
            spec.name,
            ecc.flip.corrupted_reads,
            raw.flip.corrupted_reads
        );
    }
}

/// Snapshot round trip with the plane enabled: restoring a mid-run
/// snapshot and continuing reproduces the uninterrupted run exactly,
/// flip verdict included.
#[test]
fn flip_state_survives_snapshot_restore_bit_identically() {
    let mit = || MitigationConfig::prac(500).with_alert_threshold(100_000);
    let flip = FlipPlaneConfig::new(TrhDistribution::Constant(400))
        .with_flip_probability(0.5)
        .with_ecc(EccMode::Sec);
    let cfg = AttackConfig {
        geometry: DramGeometry::tiny(),
        flip: Some(flip),
        ..AttackConfig::new(mit(), CYCLES)
    };

    let mut p_ref = DoubleSidedHammer::new(BankRef::new(0, 0), 100);
    let mut reference = AttackRun::new(&cfg, &mut p_ref);
    reference.run_until(CYCLES).unwrap();
    reference.verify_readback();
    let reference = reference.result();

    let mut p_a = DoubleSidedHammer::new(BankRef::new(0, 0), 100);
    let mut a = AttackRun::new(&cfg, &mut p_a);
    a.run_until(150_000).unwrap();
    let snap = a.snapshot();

    let mut p_b = DoubleSidedHammer::new(BankRef::new(0, 0), 100);
    let mut b = AttackRun::new(&cfg, &mut p_b);
    b.restore(&snap).unwrap();
    b.run_until(CYCLES).unwrap();
    b.verify_readback();
    let resumed = b.result();

    assert_eq!(resumed.flip, reference.flip);
    assert_eq!(resumed.violations, reference.violations);
    assert_eq!(resumed.dram, reference.dram);
    assert!(reference.flip.bit_flips > 0, "vacuous round trip");
}

/// A snapshot taken with the plane disabled must refuse to restore into
/// a flip-enabled run with a typed snapshot error (same contract as the
/// subarray section's SUBR sentinel).
#[test]
fn cross_shape_restore_fails_typed() {
    let plain = AttackConfig {
        geometry: DramGeometry::tiny(),
        ..AttackConfig::new(MitigationConfig::prac(500), CYCLES)
    };
    let mut p = DoubleSidedHammer::new(BankRef::new(0, 0), 100);
    let mut run = AttackRun::new(&plain, &mut p);
    run.run_until(50_000).unwrap();
    let snap = run.snapshot();

    let flipped = AttackConfig {
        flip: Some(FlipPlaneConfig::new(TrhDistribution::Constant(500))),
        ..plain
    };
    let mut p2 = DoubleSidedHammer::new(BankRef::new(0, 0), 100);
    let mut target = AttackRun::new(&flipped, &mut p2);
    let err = target.restore(&snap).unwrap_err();
    assert!(
        matches!(err, MopacError::Snapshot { .. }),
        "wrong error kind: {err}"
    );
}
