//! Registry round-trip suite: every engine in [`mopac::EngineRegistry`]
//! must resolve by name, construct, survive a tiny end-to-end workload
//! with the security oracle enabled, and stand up to a quick hammer —
//! the structural guarantee that a newly plugged-in engine is wired
//! through the whole stack, not just the core crate.

use mopac::config::MitigationConfig;
use mopac::EngineRegistry;
use mopac_sim::attack::{attack_suite_configs, run_attack, AttackConfig};
use mopac_sim::campaign::campaign_mitigations;
use mopac_sim::experiment::{mitigation_preset, run_workload_with};
use mopac_sim::system::SystemConfig;
use mopac_types::geometry::{BankRef, DramGeometry};
use mopac_workloads::attack::DoubleSidedHammer;

fn tiny_cfg(mit: MitigationConfig, instrs: u64) -> SystemConfig {
    let mut cfg = SystemConfig::paper_default(mit, instrs);
    cfg.geometry = DramGeometry::tiny();
    cfg.enable_checker = true;
    cfg
}

#[test]
fn every_registered_engine_runs_a_workload_oracle_clean() {
    for spec in EngineRegistry::builtin().specs() {
        let mit = mitigation_preset(spec.name, 500)
            .unwrap_or_else(|e| panic!("{}: {e}", spec.name));
        assert_eq!(mit.kind, (spec.preset)(500).kind, "{}", spec.name);
        let result = run_workload_with("xz", tiny_cfg(mit, 15_000))
            .unwrap_or_else(|e| panic!("{} run failed: {e}", spec.name));
        assert_eq!(result.violations, 0, "{}: oracle violations", spec.name);
        if spec.tracks() {
            assert!(
                result.mitigation.activations > 0,
                "{}: engine never saw an activation",
                spec.name
            );
        }
    }
}

#[test]
fn every_tracking_engine_survives_a_quick_hammer() {
    for (name, cfg) in attack_suite_configs(500, 120_000) {
        let cfg = AttackConfig {
            geometry: DramGeometry::tiny(),
            ..cfg
        };
        let mut pattern = DoubleSidedHammer::new(BankRef::new(0, 0), 100);
        let res = run_attack(&cfg, &mut pattern)
            .unwrap_or_else(|e| panic!("{name} attack failed: {e}"));
        assert_eq!(res.violations, 0, "{name}: oracle violations under hammer");
    }
}

#[test]
fn unknown_engine_name_lists_the_registry() {
    let err = mitigation_preset("no-such-engine", 500).unwrap_err();
    let msg = err.to_string();
    for name in EngineRegistry::builtin().names() {
        assert!(msg.contains(name), "error should list '{name}': {msg}");
    }
}

#[test]
fn campaign_covers_every_tracking_engine() {
    let campaign: Vec<&str> = campaign_mitigations().iter().map(|(n, _)| *n).collect();
    let tracking: Vec<&str> = EngineRegistry::builtin()
        .specs()
        .iter()
        .filter(|s| s.tracks())
        .map(|s| s.name)
        .collect();
    assert_eq!(campaign, tracking);
    assert!(campaign.len() >= 6, "expected qprac and cnc-prac on board");
}
