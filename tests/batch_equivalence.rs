//! Macro-batch equivalence suite: stepping the multi-channel system
//! with macro-batched channel handoff ([`System::batch_horizon`] /
//! `ChannelSet::tick_range`) must be *bit-identical* to the per-cycle
//! reference — every `RunResult` field, the snapshot digest at a REF
//! pause, and the metrics JSONL (minus the `kernel.*` bookkeeping,
//! which legitimately counts sync rounds differently) — across random
//! workloads × engines × fault plans, at `shard_threads` ∈ {1, 2, 4},
//! under the default horizon and under adversarially randomized
//! horizons that include H=1 batches forced through the fork path.
//!
//! Batched cycles are provably CPU-quiescent (DESIGN.md §15), so any
//! divergence here is a horizon bug, not acceptable noise.

use mopac::config::MitigationConfig;
use mopac_cpu::trace::{ReplayTrace, TraceRecord, TraceSource};
use mopac_sim::fault::{FaultKind, FaultPlan};
use mopac_sim::system::{RunResult, System, SystemConfig};
use mopac_types::addr::PhysAddr;
use mopac_types::geometry::DramGeometry;
use mopac_types::obs::SinkConfig;
use mopac_types::rng::DetRng;
use mopac_types::snapshot::fnv1a64;

/// A seeded random workload: per-core access streams mixing hammer
/// bursts (gap 0 row ping-pong), short compute gaps, and long idle
/// stretches, with occasional stores — so one run crosses the batch,
/// fast-forward, and skip regimes.
fn random_trace(core: u64, seed: u64, row_bytes: u64) -> Box<dyn TraceSource> {
    let mut rng = DetRng::from_seed(seed ^ core.wrapping_mul(0x9E37_79B9));
    let records = (0..400)
        .map(|_| {
            let gap = match rng.below(4) {
                0 => 0,
                1 => rng.below(8),
                2 => rng.below(200),
                _ => rng.below(5_000),
            } as u32;
            let row = rng.below(64);
            let col = rng.below(128);
            TraceRecord {
                gap,
                addr: PhysAddr::new(row * row_bytes * 8 + col * 64),
                is_write: rng.below(10) == 0,
            }
        })
        .collect();
    Box::new(ReplayTrace::new("batch-rand", records))
}

fn cfg4(mit: MitigationConfig, seed: u64) -> SystemConfig {
    let mut cfg = SystemConfig::paper_default(mit, 150_000);
    cfg.geometry = DramGeometry {
        channels: 4,
        ..DramGeometry::tiny()
    };
    cfg.enable_checker = true;
    cfg.metrics = Some(SinkConfig::default());
    cfg.seed = seed;
    cfg
}

#[derive(Clone, Copy)]
enum Horizon {
    /// Batching disabled: the per-cycle reference.
    PerCycle,
    /// Default horizons (production behavior).
    Batched,
    /// Every batch capped by a seeded draw from [1, 24], H=1 batches
    /// allowed, and `fork_min` 1 so even one-cycle batches cross the
    /// worker pool.
    Randomized(u64),
}

struct Artifacts {
    result: RunResult,
    digest: u64,
    metrics: String,
}

fn run_one(mut cfg: SystemConfig, threads: usize, horizon: Horizon) -> Artifacts {
    cfg.shard_threads = threads;
    let row_bytes = u64::from(cfg.geometry.row_bytes);
    let traces = (0..8)
        .map(|c| random_trace(c, cfg.seed, row_bytes))
        .collect();
    let mut sys = System::new(cfg, traces).unwrap();
    match horizon {
        Horizon::PerCycle => sys.debug_set_batching(false),
        Horizon::Batched => {}
        Horizon::Randomized(seed) => {
            sys.debug_randomize_batch(seed, 24);
            sys.debug_set_fork_min(1);
        }
    }
    // Pause at a REF boundary mid-run for the snapshot digest, then
    // finish — horizons must land pauses on the identical cycle.
    let paused = sys.run_until_refs(3).unwrap();
    let digest = if paused.is_none() {
        fnv1a64(&sys.snapshot())
    } else {
        0
    };
    let result = match paused {
        Some(done) => done,
        None => sys.run_to_completion().unwrap(),
    };
    // `kernel.*` counts sync rounds and batch lengths, which *should*
    // differ between batched and per-cycle stepping; everything else
    // must be byte-identical.
    let metrics = sys
        .metrics_snapshot()
        .unwrap()
        .to_jsonl()
        .lines()
        .filter(|l| !l.contains("\"kernel."))
        .collect::<Vec<_>>()
        .join("\n");
    Artifacts {
        result,
        digest,
        metrics,
    }
}

fn assert_cell(cfg: &SystemConfig, label: &str) {
    let reference = run_one(cfg.clone(), 1, Horizon::PerCycle);
    assert!(
        reference.digest != 0,
        "{label}: run finished before the snapshot boundary; raise the budget"
    );
    for threads in [1usize, 2, 4] {
        for (hname, horizon) in [
            ("batched", Horizon::Batched),
            ("randomized", Horizon::Randomized(0xBA7C_4E5D)),
        ] {
            let got = run_one(cfg.clone(), threads, horizon);
            let tag = format!("{label} @ t{threads}/{hname}");
            assert_eq!(reference.result, got.result, "RunResult diverged: {tag}");
            assert_eq!(
                reference.digest, got.digest,
                "snapshot digest diverged: {tag}"
            );
            assert_eq!(reference.metrics, got.metrics, "metrics diverged: {tag}");
        }
    }
}

#[test]
fn batch_equivalence_mopac_d() {
    assert_cell(&cfg4(MitigationConfig::mopac_d(500), 0xB47C_0001), "mopac_d");
}

#[test]
fn batch_equivalence_qprac_with_alert_storm() {
    let mut cfg = cfg4(MitigationConfig::qprac(500), 0xB47C_0002);
    cfg.fault_plan = Some(FaultPlan::new(0xF417).with(
        1_500,
        FaultKind::AlertStorm {
            subchannel: 0,
            period: 1_100,
            count: 20,
        },
    ));
    assert_cell(&cfg, "qprac + AlertStorm");
}

#[test]
fn batch_equivalence_practical_with_delayed_rfm() {
    let mut cfg = cfg4(MitigationConfig::practical(500), 0xB47C_0003);
    cfg.geometry.subarrays_per_bank = 4;
    cfg.fault_plan =
        Some(FaultPlan::new(0x51).with(2_000, FaultKind::DelayRfm { extra_cycles: 300 }));
    assert_cell(&cfg, "practical + DelayRfm");
}
