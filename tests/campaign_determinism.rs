//! Parallel-campaign determinism: the fault campaign must produce
//! byte-identical CSV rows for the same master seed regardless of the
//! worker-thread count — cell seeds derive from the cell index, and the
//! driver commits results in submission order.

use mopac_sim::campaign::{
    fault_cells, run_fault_campaign_cells, FaultCampaignSpec, FAULT_CAMPAIGN_HEADERS,
};
use std::time::Duration;

/// Renders the campaign's rows the way `IncrementalCsv` would (same
/// escaping rules are unnecessary here: campaign cells never emit
/// commas or quotes in the deterministic columns; a detail message
/// containing one would still compare equal byte-for-byte).
fn campaign_csv(threads: usize, master_seed: u64) -> String {
    let spec = FaultCampaignSpec {
        master_seed,
        // Small budget: determinism is a driver property, not a
        // workload property, so short cells keep the suite fast.
        instrs: 8_000,
        timeout: Duration::from_secs(120),
        threads,
        inject_panic: None,
        collect_metrics: false,
    };
    // A strided slice of the registry x fault matrix: the cells are
    // mitigation-major with six faults each, so every third index
    // still covers every registered mitigation.
    let cells: Vec<_> = fault_cells()
        .into_iter()
        .enumerate()
        .filter(|(i, _)| i % 3 == 0)
        .map(|(_, c)| c)
        .collect();
    let mut csv = FAULT_CAMPAIGN_HEADERS.join(",");
    csv.push('\n');
    run_fault_campaign_cells(&spec, &cells, |outcome| {
        csv.push_str(&outcome.row.join(","));
        csv.push('\n');
    });
    csv
}

#[test]
fn fault_campaign_rows_identical_across_thread_counts() {
    let sequential = campaign_csv(1, 0x5151);
    let parallel = campaign_csv(4, 0x5151);
    assert_eq!(
        sequential.as_bytes(),
        parallel.as_bytes(),
        "CSV bytes diverged between 1 and 4 worker threads"
    );
    // Sanity: the campaign actually ran its cells.
    assert!(sequential.lines().count() > 3, "{sequential}");
}

#[test]
fn fault_campaign_rows_depend_on_master_seed() {
    let a = campaign_csv(2, 0x5151);
    let b = campaign_csv(2, 0x9999);
    // Different master seeds fork different cell seeds; at least the
    // cycle counts should move somewhere in the matrix.
    assert_ne!(a, b, "master seed had no effect on campaign rows");
}
