//! JEDEC timing conformance: drive the DRAM device directly and verify
//! every command-interval rule of Table 1 for both timing sets, plus the
//! ABO protocol timing.

use mopac::config::MitigationConfig;
use mopac_dram::device::{DramConfig, DramDevice};
use mopac_dram::timing::TimingSet;

fn device(mit: MitigationConfig) -> DramDevice {
    DramDevice::new(DramConfig::tiny(mit))
}

#[test]
fn act_to_column_respects_trcd() {
    for (mit, t) in [
        (MitigationConfig::baseline(), TimingSet::ddr5_base()),
        (MitigationConfig::prac(500), TimingSet::ddr5_prac()),
    ] {
        let mut d = device(mit);
        d.activate(0, 0, 5, 0, false).unwrap();
        assert_eq!(d.earliest_column(0, 0, 5), Some(t.t_rcd));
    }
}

#[test]
fn act_to_pre_respects_tras() {
    for (mit, t) in [
        (MitigationConfig::baseline(), TimingSet::ddr5_base()),
        (MitigationConfig::prac(500), TimingSet::ddr5_prac()),
    ] {
        let mut d = device(mit);
        d.activate(0, 0, 5, 0, false).unwrap();
        assert_eq!(d.earliest_precharge(0, 0), Some(t.t_ras));
    }
}

#[test]
fn pre_to_act_respects_trp_per_kind() {
    // Base timing set.
    let mut d = device(MitigationConfig::baseline());
    d.activate(0, 0, 5, 0, false).unwrap();
    d.precharge(0, 0, 96).unwrap();
    assert_eq!(d.earliest_activate(0, 0), Some(96 + 42));
    // PRAC set: tRP = 108.
    let mut d = device(MitigationConfig::prac(500));
    d.activate(0, 0, 5, 0, false).unwrap();
    d.precharge(0, 0, 48).unwrap();
    assert_eq!(d.earliest_activate(0, 0), Some(48 + 108));
}

#[test]
fn full_row_cycle_matches_trc() {
    // ACT + immediate PRE + re-ACT equals tRAS + tRP = tRC in both sets.
    for (mit, t) in [
        (MitigationConfig::baseline(), TimingSet::ddr5_base()),
        (MitigationConfig::prac(500), TimingSet::ddr5_prac()),
    ] {
        let mut d = device(mit);
        d.activate(0, 0, 1, 0, false).unwrap();
        let pre = d.earliest_precharge(0, 0).unwrap();
        d.precharge(0, 0, pre).unwrap();
        assert_eq!(d.earliest_activate(0, 0), Some(t.t_rc));
    }
}

#[test]
fn mopac_c_mixes_timing_sets_per_precharge() {
    let base = TimingSet::ddr5_base();
    let prac = TimingSet::ddr5_prac();
    let mut d = device(MitigationConfig::mopac_c(500));
    // Unselected ACT: base timings.
    d.activate(0, 0, 1, 0, false).unwrap();
    assert_eq!(d.earliest_precharge(0, 0), Some(base.t_ras));
    let pre = base.t_ras;
    d.precharge(0, 0, pre).unwrap();
    assert_eq!(d.earliest_activate(0, 0), Some(pre + base.t_rp));
    // Selected ACT: PRAC tRAS (shorter) and PREcu's tRP (longer).
    let act2 = pre + base.t_rp;
    d.activate(0, 0, 2, act2, true).unwrap();
    assert!(d.pending_update(0, 0));
    assert_eq!(d.earliest_precharge(0, 0), Some(act2 + prac.t_ras));
    let pre2 = act2 + prac.t_ras;
    d.precharge(0, 0, pre2).unwrap();
    assert_eq!(d.earliest_activate(0, 0), Some(pre2 + prac.t_rp));
}

#[test]
fn read_to_read_respects_tccd_and_bus() {
    let mut d = device(MitigationConfig::baseline());
    d.activate(0, 0, 1, 0, false).unwrap();
    let rd1 = d.earliest_column(0, 0, 1).unwrap();
    d.read(0, 0, rd1).unwrap();
    let rd2 = d.earliest_column(0, 0, 1).unwrap();
    assert_eq!(rd2, rd1 + 8); // tCCD = burst occupancy
}

#[test]
fn write_recovery_blocks_precharge() {
    let t = TimingSet::ddr5_base();
    let mut d = device(MitigationConfig::baseline());
    d.activate(0, 0, 1, 0, false).unwrap();
    let wr = d.earliest_column(0, 0, 1).unwrap();
    let data_end = d.write(0, 0, wr).unwrap();
    assert_eq!(d.earliest_precharge(0, 0), Some(data_end + t.t_wr));
}

#[test]
fn trrd_spaces_activations_across_banks() {
    let t = TimingSet::ddr5_base();
    let mut d = device(MitigationConfig::baseline());
    d.activate(0, 0, 1, 0, false).unwrap();
    let next = d.earliest_activate(0, 1).unwrap();
    assert_eq!(next, t.t_rrd);
}

#[test]
fn refresh_blocks_for_trfc_and_cycles_groups() {
    let t = TimingSet::ddr5_base();
    let mut d = device(MitigationConfig::baseline());
    d.refresh(0, 0).unwrap();
    assert_eq!(d.earliest_activate(0, 0), Some(t.t_rfc));
    // Second refresh covers the next group; issue after tRFC.
    d.refresh(0, t.t_rfc).unwrap();
    assert_eq!(d.stats().refreshes, 2);
}

#[test]
fn abo_stall_blocks_subchannel_for_350ns() {
    let mut d = device(MitigationConfig::prac(500));
    // Force an alert by hammering one row.
    let mut now = 0;
    while d.alert_since(0).is_none() {
        now = d.earliest_activate(0, 0).unwrap();
        d.activate(0, 0, 7, now, false).unwrap();
        now = d.earliest_precharge(0, 0).unwrap();
        d.precharge(0, 0, now).unwrap();
    }
    let rfm_at = now + 540;
    d.rfm(0, rfm_at).unwrap();
    assert_eq!(d.earliest_activate(0, 0), Some(rfm_at + 1050));
    // The other sub-channel is unaffected (ABO is sub-channel scoped).
    assert!(d.earliest_activate(1, 0).unwrap() < rfm_at);
}

#[test]
fn data_bus_serializes_bursts_across_banks() {
    let mut d = device(MitigationConfig::baseline());
    d.activate(0, 0, 1, 0, false).unwrap();
    d.activate(0, 1, 1, 8, false).unwrap();
    let rd0 = d.earliest_column(0, 0, 1).unwrap();
    let done0 = d.read(0, 0, rd0).unwrap();
    // Bank 1's read cannot overlap the bus: earliest data start is
    // done0, so earliest command is done0 - CL.
    let rd1 = d.earliest_column(0, 1, 1).unwrap();
    assert!(rd1 + 42 >= done0, "bus overlap: rd1={rd1}, done0={done0}");
}
