//! Golden-equivalence suite: the event-driven time-skipping kernel must
//! produce *bit-identical* results to the lockstep reference kernel —
//! every `RunResult` field (including exact `f64` comparisons), the
//! controller statistics, and the typed errors from the livelock
//! watchdog and the cycle cap — across the mitigation × page-policy
//! matrix and under injected faults.
//!
//! Skipped cycles are provably no-ops (see DESIGN.md §8), so any
//! divergence here is a kernel bug, not acceptable noise.

use mopac::config::MitigationConfig;
use mopac_cpu::trace::{ReplayTrace, TraceRecord, TraceSource};
use mopac_memctrl::controller::PagePolicy;
use mopac_sim::experiment::build_traces;
use mopac_sim::fault::{FaultKind, FaultPlan};
use mopac_sim::system::{KernelMode, System, SystemConfig};
use mopac_types::addr::PhysAddr;
use mopac_types::error::MopacError;
use mopac_types::geometry::DramGeometry;
use mopac_types::obs::{Hist, SinkConfig};
use mopac_types::rng::DetRng;

fn tiny_cfg(mit: MitigationConfig, instrs: u64) -> SystemConfig {
    let mut cfg = SystemConfig::paper_default(mit, instrs);
    cfg.geometry = DramGeometry::tiny();
    cfg.enable_checker = true;
    cfg
}

/// Runs the same configuration under both kernels and asserts the full
/// `RunResult` and `McStats` are identical.
fn assert_equivalent(mut cfg: SystemConfig, label: &str) {
    cfg.kernel = KernelMode::Lockstep;
    let traces = build_traces("xz", &cfg).unwrap();
    let (golden, golden_mc) = System::new(cfg.clone(), traces)
        .unwrap()
        .run_with_mc_stats()
        .unwrap();

    cfg.kernel = KernelMode::EventDriven;
    let traces = build_traces("xz", &cfg).unwrap();
    let (fast, fast_mc) = System::new(cfg, traces)
        .unwrap()
        .run_with_mc_stats()
        .unwrap();

    assert_eq!(golden, fast, "RunResult diverged: {label}");
    assert_eq!(golden_mc, fast_mc, "McStats diverged: {label}");
}

#[test]
fn equivalence_matrix_mitigation_x_page_policy() {
    type MitigationCtor = fn() -> MitigationConfig;
    let mitigations: [(&str, MitigationCtor); 6] = [
        ("prac", || MitigationConfig::prac(500)),
        ("mopac_c", || MitigationConfig::mopac_c(500)),
        ("mopac_d", || MitigationConfig::mopac_d(500)),
        ("qprac", || MitigationConfig::qprac(500)),
        ("cnc_prac", || MitigationConfig::cnc_prac(500)),
        ("practical", || MitigationConfig::practical(500)),
    ];
    let policies = [
        ("open", PagePolicy::Open),
        ("closed_idle", PagePolicy::ClosedIdle),
        ("timeout", PagePolicy::TimeoutNs(120.0)),
    ];
    for (mname, mit) in mitigations {
        for (pname, policy) in policies {
            let mut cfg = tiny_cfg(mit(), 20_000);
            cfg.mc.page_policy = policy;
            assert_equivalent(cfg, &format!("{mname} x {pname}"));
        }
    }
}

/// Strict close-page (the attacker's policy) is its own path through
/// the controller's wake logic.
#[test]
fn equivalence_closed_policy() {
    let mut cfg = tiny_cfg(MitigationConfig::prac(500), 20_000);
    cfg.mc.page_policy = PagePolicy::Closed;
    assert_equivalent(cfg, "prac x closed");
}

/// PRACtical with a real subarray split: the per-subarray update gates
/// and the bank-scoped RFM ladder add wake sources of their own, which
/// the event kernel must honor exactly.
#[test]
fn equivalence_practical_with_subarrays() {
    for subarrays in [1u32, 8] {
        let mut cfg = tiny_cfg(MitigationConfig::practical(500), 20_000);
        cfg.geometry.subarrays_per_bank = subarrays;
        assert_equivalent(cfg, &format!("practical x {subarrays} subarrays"));
    }
}

/// Delayed RFMs stretch device timing gates; the skip logic must not
/// jump over the stretched release points.
#[test]
fn equivalence_under_delayed_rfm() {
    let mut cfg = tiny_cfg(MitigationConfig::mopac_c(500), 20_000);
    cfg.fault_plan =
        Some(FaultPlan::new(0x51).with(0, FaultKind::DelayRfm { extra_cycles: 300 }));
    assert_equivalent(cfg, "mopac_c + DelayRfm");
}

/// An ALERT storm forces the controller through ABO stall mode, whose
/// per-cycle stall statistics the skip path compensates in bulk.
#[test]
fn equivalence_under_alert_storm() {
    let mut cfg = tiny_cfg(MitigationConfig::mopac_d(500), 20_000);
    cfg.fault_plan = Some(FaultPlan::new(0xBEEF).with(
        1_000,
        FaultKind::AlertStorm {
            subchannel: 0,
            period: 1_100,
            count: 25,
        },
    ));
    assert_equivalent(cfg, "mopac_d + AlertStorm");
}

/// The LLC and no-prefetch variants cover the remaining fetch paths.
#[test]
fn equivalence_with_llc_and_without_prefetch() {
    let mut cfg = tiny_cfg(MitigationConfig::prac(500), 20_000);
    cfg.use_llc = true;
    assert_equivalent(cfg, "prac + llc");

    let mut cfg = tiny_cfg(MitigationConfig::prac(500), 20_000);
    cfg.prefetch_distance = 0;
    assert_equivalent(cfg, "prac - prefetch");
}

/// Long-gap single-core runs are dominated by the bulk scalar fast
/// paths (`Core::run_plain` during pure gap flow,
/// `Core::run_stalled_fetch` while the ROB head waits on a load):
/// whole regions of ROB evolution collapse to closed-form arithmetic,
/// which must not perturb a single statistic. Sweeping the gap length
/// covers the no-bulk, stalled-bulk, and plain-bulk regimes plus the
/// per-cycle tails between them; the write records exercise the posted
/// (non-ROB) path alongside blocking reads.
#[test]
fn equivalence_idle_heavy_bulk_regions() {
    let run = |kernel: KernelMode, gap: u32| {
        let mut cfg = tiny_cfg(MitigationConfig::prac(500), 60_000);
        cfg.kernel = kernel;
        let records: Vec<TraceRecord> = (0..64u64)
            .map(|i| TraceRecord {
                gap,
                addr: PhysAddr::new(i * 64 * 131),
                is_write: i % 7 == 0,
            })
            .collect();
        let trace = Box::new(ReplayTrace::new("idle", records)) as Box<dyn TraceSource>;
        System::new(cfg, vec![trace])
            .unwrap()
            .run_with_mc_stats()
            .unwrap()
    };
    for gap in [90, 700, 4_000] {
        let (golden, golden_mc) = run(KernelMode::Lockstep, gap);
        let (fast, fast_mc) = run(KernelMode::EventDriven, gap);
        assert_eq!(golden, fast, "RunResult diverged: gap={gap}");
        assert_eq!(golden_mc, fast_mc, "McStats diverged: gap={gap}");
    }
}

/// Property test over random fault plans: the per-mode `McStats`
/// replication in the event kernel's saturated fast path (ABO-stall /
/// refresh-mode / idle-with-work counters) must stay field-identical
/// to lockstep under arbitrary mixes of ALERT storms, dropped and
/// delayed RFMs, counter bit-flips and wedged banks. Every plan always
/// carries an ABO storm so the stall classification is exercised; the
/// rest of the plan is drawn from a deterministic RNG.
#[test]
fn stats_equivalence_under_random_fault_plans() {
    let mut rng = DetRng::from_seed(0x0B5E_C0DE);
    for case in 0..6u64 {
        let mut plan = FaultPlan::new(rng.next_u64());
        plan = plan.with(
            500 + rng.next_u64() % 4_000,
            FaultKind::AlertStorm {
                subchannel: (rng.next_u64() % 2) as u32,
                period: 900 + rng.next_u64() % 1_500,
                count: (5 + rng.next_u64() % 20) as u32,
            },
        );
        for _ in 0..rng.next_u64() % 3 {
            let at = 500 + rng.next_u64() % 8_000;
            let kind = match rng.next_u64() % 4 {
                0 => FaultKind::DropRfm {
                    count: (1 + rng.next_u64() % 3) as u32,
                },
                1 => FaultKind::DelayRfm {
                    extra_cycles: 50 + rng.next_u64() % 250,
                },
                2 => FaultKind::CounterBitFlip {
                    subchannel: (rng.next_u64() % 2) as u32,
                    bank: (rng.next_u64() % 4) as u32,
                    bit: (rng.next_u64() % 12) as u32,
                },
                _ => FaultKind::StuckBank {
                    subchannel: (rng.next_u64() % 2) as u32,
                    bank: (rng.next_u64() % 4) as u32,
                    duration: 2_000 + rng.next_u64() % 8_000,
                },
            };
            plan = plan.with(at, kind);
        }
        let mit = match case % 3 {
            0 => MitigationConfig::mopac_c(500),
            1 => MitigationConfig::mopac_d(500),
            _ => MitigationConfig::prac(500),
        };
        let mut cfg = tiny_cfg(mit, 15_000);
        cfg.fault_plan = Some(plan);
        assert_equivalent(cfg, &format!("random fault plan #{case}"));
    }
}

/// The observability invariant (DESIGN.md §11): enabling the metrics
/// sink changes *nothing* about the simulation — same `RunResult` bit
/// for bit (RNG streams included), under both kernels, with an ABO
/// storm active. And the exported registry copies must mirror the
/// stats structs exactly, including the read-latency histogram whose
/// count/sum replicate the controller's latency accounting.
#[test]
fn metrics_sink_does_not_perturb_the_simulation() {
    for kernel in [KernelMode::Lockstep, KernelMode::EventDriven] {
        let mut cfg = tiny_cfg(MitigationConfig::mopac_d(500), 20_000);
        cfg.kernel = kernel;
        cfg.fault_plan = Some(FaultPlan::new(0xAB0).with(
            1_000,
            FaultKind::AlertStorm {
                subchannel: 0,
                period: 1_100,
                count: 10,
            },
        ));
        let traces = build_traces("xz", &cfg).unwrap();
        let (off, off_mc) = System::new(cfg.clone(), traces)
            .unwrap()
            .run_with_mc_stats()
            .unwrap();

        let mut on_cfg = cfg.clone();
        on_cfg.metrics = Some(SinkConfig::default());
        let traces = build_traces("xz", &on_cfg).unwrap();
        let (on, snapshot) = System::new(on_cfg, traces)
            .unwrap()
            .run_with_metrics()
            .unwrap();
        let snapshot = snapshot.expect("metrics were enabled");

        assert_eq!(off, on, "metrics sink changed the simulation ({kernel:?})");
        assert_eq!(snapshot.counter("mc.reads_done"), Some(off_mc.reads_done));
        assert_eq!(snapshot.counter("mc.writes_done"), Some(off_mc.writes_done));
        assert_eq!(
            snapshot.counter("mc.read_latency_sum"),
            Some(off_mc.read_latency_sum)
        );
        assert_eq!(
            snapshot.counter("mc.abo_stall_cycles"),
            Some(off_mc.abo_stall_cycles)
        );
        assert_eq!(snapshot.counter("dram.activates"), Some(off.dram.activates));
        assert_eq!(snapshot.counter("dram.rfms"), Some(off.dram.rfms));
        assert_eq!(
            snapshot.counter("engine.mitigations"),
            Some(off.mitigation.mitigations)
        );
        let lat = snapshot
            .hist_merged(Hist::ReadLatency)
            .expect("reads were recorded");
        assert_eq!(lat.count, off_mc.reads_done, "latency hist count ({kernel:?})");
        assert_eq!(lat.sum, off_mc.read_latency_sum, "latency hist sum ({kernel:?})");
    }
}

/// A single-core, long-gap workload is almost entirely idle — the
/// event kernel spends most of the run jumping. The satellite
/// regression: a skip that would land past `max_cycles` must clamp to
/// the cap and surface `CycleCapExceeded` with exactly the fields the
/// lockstep kernel reports.
#[test]
fn cycle_cap_identical_under_time_skipping() {
    let run = |kernel: KernelMode| {
        let mut cfg = tiny_cfg(MitigationConfig::baseline(), u64::MAX);
        cfg.kernel = kernel;
        cfg.livelock_window = 0;
        cfg.max_cycles = 30_000;
        // One record every ~2000 cycles: huge idle regions between
        // requests guarantee the cap lies inside a skip region.
        let records = vec![TraceRecord {
            gap: 10_000,
            addr: PhysAddr::new(0),
            is_write: false,
        }];
        let trace = Box::new(ReplayTrace::new("idle", records)) as Box<dyn TraceSource>;
        System::new(cfg, vec![trace]).unwrap().run().unwrap_err()
    };
    let golden = run(KernelMode::Lockstep);
    let fast = run(KernelMode::EventDriven);
    let MopacError::CycleCapExceeded {
        cap,
        finished_cores,
        total_cores,
    } = &fast
    else {
        panic!("expected CycleCapExceeded, got {fast}");
    };
    assert_eq!(*cap, 30_000);
    assert_eq!((*finished_cores, *total_cores), (0, 1));
    assert_eq!(format!("{golden:?}"), format!("{fast:?}"));
}

/// The livelock watchdog must fire at the same cycle with the same
/// stall accounting when the stall region is skipped instead of ticked.
#[test]
fn livelock_identical_under_time_skipping() {
    let run = |kernel: KernelMode| {
        let mut cfg = tiny_cfg(MitigationConfig::baseline(), 1_000_000);
        cfg.kernel = kernel;
        cfg.prefetch_distance = 0;
        cfg.livelock_window = 20_000;
        cfg.max_cycles = 50_000_000;
        cfg.fault_plan = Some(FaultPlan::new(0x11).with(
            100,
            FaultKind::StuckBank {
                subchannel: 0,
                bank: 0,
                duration: 40_000_000,
            },
        ));
        let records = vec![TraceRecord {
            gap: 0,
            addr: PhysAddr::new(0),
            is_write: false,
        }];
        let trace = Box::new(ReplayTrace::new("starved", records)) as Box<dyn TraceSource>;
        System::new(cfg, vec![trace]).unwrap().run().unwrap_err()
    };
    let golden = run(KernelMode::Lockstep);
    let fast = run(KernelMode::EventDriven);
    assert!(
        matches!(fast, MopacError::Livelock { .. }),
        "expected Livelock, got {fast}"
    );
    assert_eq!(format!("{golden:?}"), format!("{fast:?}"));
}
