//! End-to-end performance behaviour across the full stack: cores, LLC,
//! memory controller, DRAM device and mitigation engines together.

use mopac::config::MitigationConfig;
use mopac_sim::experiment::{build_traces, run_workload};
use mopac_sim::system::{System, SystemConfig};

const INSTRS: u64 = 60_000;

#[test]
fn mitigation_cost_ordering_on_latency_bound_workload() {
    // xz: lowest RBHR in Table 4, most PRAC-sensitive.
    let base = run_workload("xz", MitigationConfig::baseline(), INSTRS).unwrap();
    let prac = run_workload("xz", MitigationConfig::prac(500), INSTRS).unwrap();
    let mc = run_workload("xz", MitigationConfig::mopac_c(500), INSTRS).unwrap();
    let md = run_workload("xz", MitigationConfig::mopac_d(500), INSTRS).unwrap();
    let s_prac = prac.slowdown_vs(&base);
    let s_mc = mc.slowdown_vs(&base);
    let s_md = md.slowdown_vs(&base);
    assert!(s_prac > 0.10, "PRAC slowdown {s_prac}");
    assert!(s_mc < s_prac / 2.0, "MoPAC-C {s_mc} vs PRAC {s_prac}");
    assert!(s_md < s_prac / 2.0, "MoPAC-D {s_md} vs PRAC {s_prac}");
    assert!(s_md < 0.03, "MoPAC-D at T=500 should be near zero, got {s_md}");
}

#[test]
fn streams_are_insensitive_to_prac() {
    let base = run_workload("copy", MitigationConfig::baseline(), INSTRS).unwrap();
    let prac = run_workload("copy", MitigationConfig::prac(500), INSTRS).unwrap();
    let s = prac.slowdown_vs(&base);
    // Paper: ~1%. Our write-drain turnaround model keeps a few percent
    // of residual sensitivity (see EXPERIMENTS.md); assert it stays far
    // below the latency-bound workloads' ~15-25%.
    assert!(
        s < 0.12,
        "bandwidth-bound stream should barely feel PRAC, got {s}"
    );
}

#[test]
fn mopac_c_overhead_grows_as_threshold_drops() {
    let base = run_workload("mcf", MitigationConfig::baseline(), INSTRS).unwrap();
    let s1000 = run_workload("mcf", MitigationConfig::mopac_c(1000), INSTRS).unwrap().slowdown_vs(&base);
    let s250 = run_workload("mcf", MitigationConfig::mopac_c(250), INSTRS).unwrap().slowdown_vs(&base);
    assert!(
        s250 > s1000,
        "lower threshold must cost more: {s250} vs {s1000}"
    );
}

#[test]
fn identical_seeds_are_deterministic() {
    let a = run_workload("omnetpp", MitigationConfig::mopac_d(500), 20_000).unwrap();
    let b = run_workload("omnetpp", MitigationConfig::mopac_d(500), 20_000).unwrap();
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.dram, b.dram);
    for (x, y) in a.cores.iter().zip(&b.cores) {
        assert_eq!(x.finish_cycle, y.finish_cycle);
    }
}

#[test]
fn mixes_run_heterogeneous_cores() {
    let r = run_workload("mix1", MitigationConfig::baseline(), 30_000).unwrap();
    assert_eq!(r.cores.len(), 8);
    // Heterogeneous workloads finish at different times.
    let first = r.cores[0].finish_cycle;
    assert!(
        r.cores.iter().any(|c| c.finish_cycle != first),
        "mix cores should not be in lockstep"
    );
}

#[test]
fn drain_on_ref_reduces_alert_rate() {
    let no_drain = {
        let cfg = MitigationConfig::mopac_d(250).with_drain_on_ref(0);
        run_workload("parest", cfg, INSTRS).unwrap()
    };
    let with_drain = run_workload("parest", MitigationConfig::mopac_d(250), INSTRS).unwrap();
    assert!(
        with_drain.dram.alerts() <= no_drain.dram.alerts(),
        "drain-on-REF should not increase alerts: {} vs {}",
        with_drain.dram.alerts(),
        no_drain.dram.alerts()
    );
}

#[test]
fn nup_halves_srq_insertions() {
    let uni = run_workload("bwaves", MitigationConfig::mopac_d(500), INSTRS).unwrap();
    let nup = run_workload("bwaves", MitigationConfig::mopac_d_nup(500), INSTRS).unwrap();
    let rate_uni = uni.mitigation.srq_insertions as f64 / uni.dram.activates as f64;
    let rate_nup = nup.mitigation.srq_insertions as f64 / nup.dram.activates as f64;
    let ratio = rate_nup / rate_uni;
    assert!(
        (0.4..0.68).contains(&ratio),
        "NUP should halve insertions (Table 12), got ratio {ratio}"
    );
}

#[test]
fn checker_stays_clean_during_benign_runs() {
    let mut cfg = SystemConfig::paper_default(MitigationConfig::mopac_d(500), 40_000);
    cfg.enable_checker = true;
    let traces = build_traces("parest", &cfg).unwrap();
    let r = System::new(cfg, traces).unwrap().run().unwrap();
    assert_eq!(r.violations, 0);
}

#[test]
fn llc_path_reduces_dram_traffic() {
    let mut with_llc = SystemConfig::paper_default(MitigationConfig::baseline(), 40_000);
    with_llc.use_llc = true;
    let r_llc = System::new(with_llc.clone(), build_traces("masstree", &with_llc).unwrap())
        .unwrap()
        .run()
        .unwrap();
    let without = SystemConfig::paper_default(MitigationConfig::baseline(), 40_000);
    let r_raw = System::new(without.clone(), build_traces("masstree", &without).unwrap())
        .unwrap()
        .run()
        .unwrap();
    assert!(
        r_llc.dram.reads < r_raw.dram.reads,
        "LLC should filter hot rows of the Zipf workload: {} vs {}",
        r_llc.dram.reads,
        r_raw.dram.reads
    );
}

#[test]
fn rate_mode_cores_see_similar_ipc() {
    let r = run_workload("lbm", MitigationConfig::baseline(), 30_000).unwrap();
    let min = r.cores.iter().map(|c| c.ipc).fold(f64::MAX, f64::min);
    let max = r.cores.iter().map(|c| c.ipc).fold(0.0, f64::max);
    assert!(
        max / min < 1.3,
        "rate-mode IPC spread too wide: {min}..{max}"
    );
}
