//! Cross-crate security suite: every mitigation design is attacked with
//! the patterns from the threat model (Section 2.1) and checked against
//! the Rowhammer oracle, including failure-injection runs that prove the
//! oracle itself catches real violations.
//!
//! Attack runs use the tiny geometry (full bank count is unnecessary for
//! per-bank security) and thresholds from the paper's range.

use mopac::config::MitigationConfig;
use mopac_sim::attack::{run_attack, AttackConfig, AttackRun};
use mopac_types::geometry::{BankRef, DramGeometry};
use mopac_workloads::attack::{
    AttackPattern, DoubleSidedHammer, MultiBankRoundRobin, SingleRowHammer, SrqFillAttack,
};

const CYCLES: u64 = 900_000;

fn attack_tiny(mit: MitigationConfig, pattern: &mut dyn AttackPattern) -> mopac_sim::AttackResult {
    let cfg = AttackConfig {
        geometry: DramGeometry::tiny(),
        ..AttackConfig::new(mit, CYCLES)
    };
    run_attack(&cfg, pattern).unwrap()
}

#[test]
fn prac_moat_stops_double_sided() {
    let mut p = DoubleSidedHammer::new(BankRef::new(0, 0), 500);
    let r = attack_tiny(MitigationConfig::prac(500), &mut p);
    assert_eq!(r.violations, 0, "{:?}", r.dram);
    assert!(r.dram.mitigations > 0, "MOAT never mitigated");
}

#[test]
fn prac_moat_stops_single_row_hammer() {
    let mut p = SingleRowHammer::new(BankRef::new(1, 1), 40, 600, 32);
    let r = attack_tiny(MitigationConfig::prac(500), &mut p);
    assert_eq!(r.violations, 0);
}

#[test]
fn mopac_c_stops_double_sided_at_all_thresholds() {
    for t in [250u64, 500, 1000] {
        let mut p = DoubleSidedHammer::new(BankRef::new(0, 2), 123);
        let r = attack_tiny(MitigationConfig::mopac_c(t), &mut p);
        assert_eq!(r.violations, 0, "T_RH = {t}");
        assert!(r.dram.alerts() > 0, "T_RH = {t}: no alerts");
    }
}

#[test]
fn mopac_d_stops_double_sided_at_all_thresholds() {
    for t in [250u64, 500, 1000] {
        let mut p = DoubleSidedHammer::new(BankRef::new(0, 3), 321);
        let r = attack_tiny(MitigationConfig::mopac_d(t), &mut p);
        assert_eq!(r.violations, 0, "T_RH = {t}");
    }
}

#[test]
fn mopac_d_nup_stops_double_sided() {
    let mut p = DoubleSidedHammer::new(BankRef::new(1, 0), 77);
    let r = attack_tiny(MitigationConfig::mopac_d_nup(500), &mut p);
    assert_eq!(r.violations, 0);
}

#[test]
fn mopac_d_survives_srq_fill_pressure() {
    let mut p = SrqFillAttack::new(BankRef::new(0, 0), 900);
    let r = attack_tiny(MitigationConfig::mopac_d(500), &mut p);
    assert_eq!(r.violations, 0);
    assert!(
        r.dram.alerts_srq_full > 0,
        "SRQ-fill attack should trigger SRQ-full alerts"
    );
}

#[test]
fn mopac_d_single_chip_no_drain_still_secure() {
    // Worst configuration for tardiness: no REF drains, one chip.
    let mit = MitigationConfig::mopac_d(500)
        .with_chips(1)
        .with_drain_on_ref(0);
    let mut p = SingleRowHammer::new(BankRef::new(0, 1), 10, 500, 64);
    let r = attack_tiny(mit, &mut p);
    assert_eq!(r.violations, 0);
}

#[test]
fn multi_bank_round_robin_contained() {
    let mut p = MultiBankRoundRobin::new(DramGeometry::tiny(), 42);
    for mit in [
        MitigationConfig::prac(250),
        MitigationConfig::mopac_c(250),
        MitigationConfig::mopac_d(250),
    ] {
        let r = attack_tiny(mit, &mut p);
        assert_eq!(r.violations, 0, "{:?}", mit.kind);
    }
}

#[test]
fn failure_injection_oracle_catches_weak_prac() {
    // ATH far above T_RH: the tracker exists but never fires in time.
    let broken = MitigationConfig::prac(500).with_alert_threshold(100_000);
    let mut p = DoubleSidedHammer::new(BankRef::new(0, 0), 100);
    let r = attack_tiny(broken, &mut p);
    assert!(r.violations > 0, "oracle failed to catch the broken config");
}

#[test]
fn failure_injection_oracle_catches_weak_mopac_d() {
    let broken = MitigationConfig::mopac_d(500).with_alert_threshold(60_000);
    let mut p = DoubleSidedHammer::new(BankRef::new(0, 0), 100);
    let r = attack_tiny(broken, &mut p);
    assert!(r.violations > 0, "oracle failed on weak MoPAC-D");
}

#[test]
fn mopac_c_undersampling_is_caught() {
    // Keep ATH* but sample far too rarely: counters cannot reach the
    // threshold before T_RH activations.
    let mut broken = MitigationConfig::mopac_c(500);
    broken.sample_denominator = 512;
    let mut p = DoubleSidedHammer::new(BankRef::new(0, 0), 100);
    let r = attack_tiny(broken, &mut p);
    assert!(
        r.violations > 0,
        "oracle should flag an undersampled MoPAC-C"
    );
}

/// Regression guard for the checker's top-edge phantom-victim fix: the
/// battery above attacks only interior rows, so every recorded victim
/// must be interior and adjacent to its aggressor — the fix cannot
/// (and must not) change any of those verdicts. The count on this
/// canonical broken run is pinned exactly.
#[test]
fn phantom_fix_leaves_interior_battery_verdicts_unchanged() {
    let broken = MitigationConfig::prac(500).with_alert_threshold(100_000);
    let cfg = AttackConfig {
        geometry: DramGeometry::tiny(),
        ..AttackConfig::new(broken, CYCLES)
    };
    let mut p = DoubleSidedHammer::new(BankRef::new(0, 0), 100);
    let mut run = AttackRun::new(&cfg, &mut p);
    run.run_until(CYCLES).unwrap();
    let rows = cfg.geometry.rows_per_bank;
    let records = run.dram().violation_records();
    assert!(!records.is_empty());
    for v in &records {
        assert!(v.victim < rows, "victim {} outside bank", v.victim);
        assert!(
            v.victim == v.row + 1 || v.victim + 1 == v.row,
            "victim {} not adjacent to aggressor {}",
            v.victim,
            v.row
        );
        assert!(v.row > 0 && v.row < rows - 1, "battery aggressor at edge");
    }
}

/// Device-level top-edge hammer: hammering the *last* row of the bank
/// under a broken mitigation must record violations only against the
/// one real victim below it — never the phantom `row + 1` the
/// pre-fix checker invented past the end of the array.
#[test]
fn top_row_hammer_records_no_phantom_victim() {
    let broken = MitigationConfig::prac(500).with_alert_threshold(100_000);
    let cfg = AttackConfig {
        geometry: DramGeometry::tiny(),
        ..AttackConfig::new(broken, CYCLES)
    };
    let rows = cfg.geometry.rows_per_bank;
    let mut p = SingleRowHammer::new(BankRef::new(0, 0), rows - 1, 10, 32);
    let mut run = AttackRun::new(&cfg, &mut p);
    run.run_until(CYCLES).unwrap();
    let records = run.dram().violation_records();
    assert!(!records.is_empty(), "broken config never violated");
    for v in &records {
        if v.row == rows - 1 {
            assert_eq!(
                v.victim,
                rows - 2,
                "phantom victim {} recorded for top-row aggressor",
                v.victim
            );
        }
        assert!(v.victim < rows, "victim {} outside bank", v.victim);
    }
}

#[test]
fn row_press_hardened_configs_remain_secure_against_hammering() {
    for mit in [
        MitigationConfig::mopac_c(500).with_row_press(),
        MitigationConfig::mopac_d(500).with_row_press(),
    ] {
        let mut p = DoubleSidedHammer::new(BankRef::new(0, 0), 55);
        let r = attack_tiny(mit, &mut p);
        assert_eq!(r.violations, 0, "{:?}", mit.kind);
    }
}
