//! Quickstart: compare PRAC against MoPAC on one workload.
//!
//! ```text
//! cargo run --release -p mopac-sim --example quickstart [workload] [t_rh]
//! ```
//!
//! Builds the paper's 8-core DDR5 system, runs the chosen workload
//! (default `xz`) under the unprotected baseline, PRAC+MOAT, MoPAC-C and
//! MoPAC-D at the chosen Rowhammer threshold (default 500), and prints
//! the derived security parameters and measured slowdowns.

use mopac::config::MitigationConfig;
use mopac_analysis::params::{mopac_c_params, mopac_d_params};
use mopac_sim::experiment::run_workload;

fn main() {
    let mut args = std::env::args().skip(1);
    let workload = args.next().unwrap_or_else(|| "xz".to_string());
    let t_rh: u64 = args
        .next()
        .map(|v| v.parse().expect("t_rh must be an integer"))
        .unwrap_or(500);
    let instrs = 150_000;

    let pc = mopac_c_params(t_rh);
    let pd = mopac_d_params(t_rh);
    println!("MoPAC parameters for T_RH = {t_rh}:");
    println!(
        "  MoPAC-C: p = 1/{}, C = {}, ATH* = {}",
        pc.update_prob_denominator, pc.critical_updates, pc.ath_star
    );
    println!(
        "  MoPAC-D: p = 1/{}, C = {}, ATH* = {}, TTH = {}, drain-on-REF = {}",
        pd.update_prob_denominator, pd.critical_updates, pd.ath_star, pd.tth, pd.drain_on_ref
    );

    println!("\nSimulating '{workload}' ({instrs} instructions/core, 8 cores)...");
    let base = run_workload(&workload, MitigationConfig::baseline(), instrs).unwrap();
    for (name, cfg) in [
        ("PRAC+MOAT", MitigationConfig::prac(t_rh)),
        ("MoPAC-C", MitigationConfig::mopac_c(t_rh)),
        ("MoPAC-D", MitigationConfig::mopac_d(t_rh)),
        ("MoPAC-D+NUP", MitigationConfig::mopac_d_nup(t_rh)),
    ] {
        let run = run_workload(&workload, cfg, instrs).unwrap();
        println!(
            "  {name:12} slowdown {:+5.1}%   (ALERTs {}, mitigations {}, counter-updates {})",
            run.slowdown_vs(&base) * 100.0,
            run.dram.alerts(),
            run.dram.mitigations,
            run.mitigation.counter_updates,
        );
    }
    println!(
        "\nBaseline: {} cycles, row-buffer hit rate {:.2}, avg read latency {:.0} cycles",
        base.cycles,
        base.rbhr(),
        base.avg_read_latency
    );
}
