//! Attack lab: hammer the DRAM and watch the mitigations (or their
//! absence) through the security oracle.
//!
//! ```text
//! cargo run --release -p mopac-sim --example attack_lab
//! ```
//!
//! Runs three attack patterns against four configurations — an
//! unprotected device, a deliberately mis-parameterized PRAC, and
//! correctly derived MoPAC-C / MoPAC-D — and reports attacker
//! throughput, ALERT/mitigation activity and oracle violations.

use mopac::config::MitigationConfig;
use mopac_sim::attack::{run_attack, AttackConfig};
use mopac_types::geometry::{BankRef, DramGeometry};
use mopac_workloads::attack::{
    AttackPattern, DoubleSidedHammer, MultiBankRoundRobin, SrqFillAttack,
};

fn patterns() -> Vec<Box<dyn AttackPattern>> {
    let geom = DramGeometry::ddr5_32gb();
    vec![
        Box::new(DoubleSidedHammer::new(BankRef::new(0, 0), 1000)),
        Box::new(MultiBankRoundRobin::new(geom, 777)),
        Box::new(SrqFillAttack::new(BankRef::new(1, 3), 4096)),
    ]
}

fn main() {
    let cycles = 1_000_000;
    let t_rh = 500;
    let configs = [
        ("unprotected (oracle only)", {
            // PRAC with an absurd threshold: counts but never alerts —
            // a stand-in for an unmitigated PRAC device.
            MitigationConfig::prac(t_rh).with_alert_threshold(1_000_000)
        }),
        ("PRAC+MOAT", MitigationConfig::prac(t_rh)),
        ("MoPAC-C", MitigationConfig::mopac_c(t_rh)),
        ("MoPAC-D", MitigationConfig::mopac_d(t_rh)),
    ];
    println!("attack lab @ T_RH = {t_rh}, {cycles} DRAM cycles per run\n");
    println!(
        "{:<28} {:<14} {:>9} {:>7} {:>7} {:>11}",
        "config", "pattern", "ACTs", "ALERTs", "mitig", "VIOLATIONS"
    );
    for (name, cfg) in configs {
        for mut pattern in patterns() {
            let res = run_attack(&AttackConfig::new(cfg, cycles), pattern.as_mut()).unwrap();
            println!(
                "{:<28} {:<14} {:>9} {:>7} {:>7} {:>11}",
                name,
                pattern.name(),
                res.activations,
                res.dram.alerts(),
                res.dram.mitigations,
                res.violations
            );
        }
    }
    println!(
        "\nExpected: only the mis-parameterized first config shows violations; \
         every properly derived design keeps the oracle clean."
    );
}
