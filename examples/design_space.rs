//! Design-space exploration: what do MoPAC's parameters and worst-case
//! costs look like at an arbitrary Rowhammer threshold?
//!
//! ```text
//! cargo run --release -p mopac-sim --example design_space [t_rh ...]
//! ```
//!
//! For each threshold (default: the paper's 4000..125 range), prints the
//! derived sampling probability, critical update count, revised ALERT
//! threshold, NUP variant, and the analytic worst-case slowdowns under
//! performance attacks — everything a DRAM or SoC architect would need
//! to pick an operating point.

use mopac_analysis::markov::nup_params;
use mopac_analysis::moat::moat_ath;
use mopac_analysis::mttf::FailureBudget;
use mopac_analysis::params::{mopac_c_params, mopac_d_params};
use mopac_analysis::perf_attack::{
    mitigation_attack_slowdown, srq_full_attack_slowdown, tth_attack_slowdown, PAPER_ALPHA,
};

fn main() {
    let args: Vec<u64> = std::env::args()
        .skip(1)
        .map(|v| v.parse().expect("thresholds must be integers"))
        .collect();
    let thresholds = if args.is_empty() {
        vec![4000, 2000, 1000, 500, 250, 125]
    } else {
        args
    };
    println!(
        "{:>6} {:>6} {:>9} {:>6} {:>7} {:>7} {:>7} {:>9} {:>9} {:>9}",
        "T_RH", "ATH", "eps", "p", "C-ATH*", "D-ATH*", "NUP", "mitig-atk", "srq-atk", "tth-atk"
    );
    for t in thresholds {
        let ath = moat_ath(t);
        let eps = FailureBudget::paper_default(t).per_side_epsilon();
        let c = mopac_c_params(t);
        let d = mopac_d_params(t);
        let n = nup_params(t);
        println!(
            "{:>6} {:>6} {:>9.2e} {:>6} {:>7} {:>7} {:>7} {:>8.1}% {:>8.1}% {:>8.1}%",
            t,
            ath,
            eps,
            format!("1/{}", c.update_prob_denominator),
            c.ath_star,
            d.ath_star,
            n.ath_star,
            mitigation_attack_slowdown(&d, PAPER_ALPHA) * 100.0,
            srq_full_attack_slowdown(&d, 5) * 100.0,
            tth_attack_slowdown(d.tth) * 100.0,
        );
    }
    println!(
        "\nAttack columns are analytic worst cases for MoPAC-D \
         (Section 7 model, alpha = {PAPER_ALPHA})."
    );
}
