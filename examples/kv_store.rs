//! Key-value-store scenario: a masstree-like Zipfian workload running
//! through the shared LLC (the paper's motivating datacenter case).
//!
//! ```text
//! cargo run --release -p mopac-sim --example kv_store
//! ```
//!
//! Unlike the calibrated Table 4 sweeps (which model the post-LLC miss
//! stream directly), this example feeds raw addresses through the 8 MB
//! shared LLC, so cache hits, writebacks and DRAM pressure all emerge
//! from the access pattern — then compares PRAC against MoPAC-D on it.

use mopac::config::MitigationConfig;
use mopac_sim::experiment::build_traces;
use mopac_sim::system::{System, SystemConfig};

fn run(mit: MitigationConfig, instrs: u64) -> mopac_sim::system::RunResult {
    let mut cfg = SystemConfig::paper_default(mit, instrs);
    cfg.use_llc = true;
    let traces = build_traces("masstree", &cfg).unwrap();
    System::new(cfg, traces).unwrap().run().unwrap()
}

fn main() {
    let instrs = 150_000;
    println!("masstree-like KV store through the shared 8 MB LLC...\n");
    let base = run(MitigationConfig::baseline(), instrs);
    println!(
        "baseline: {} cycles, DRAM reads {}, writes {}, RBHR {:.2}, avg lat {:.0} cyc",
        base.cycles,
        base.dram.reads,
        base.dram.writes,
        base.rbhr(),
        base.avg_read_latency
    );
    for (name, cfg) in [
        ("PRAC+MOAT", MitigationConfig::prac(500)),
        ("MoPAC-D", MitigationConfig::mopac_d(500)),
        ("MoPAC-D+NUP", MitigationConfig::mopac_d_nup(500)),
    ] {
        let r = run(cfg, instrs);
        println!(
            "{name:12} slowdown {:+5.1}%  (ALERTs {}, deferred updates {})",
            r.slowdown_vs(&base) * 100.0,
            r.dram.alerts(),
            r.dram.deferred_updates
        );
    }
}
